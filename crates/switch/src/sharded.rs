//! The sharded data-plane backend: multi-core packet replay with
//! deterministic digest merging.
//!
//! A Tofino pipe classifies flows in parallel match-action stages; this
//! emulator's serial [`Pipeline`](crate::pipeline::Pipeline) cannot use
//! more than one host core. [`ShardedPipeline`] partitions *all* mutable
//! state — flow table, blacklist, digest buffer, path counters — by a hash
//! of the canonical 5-tuple, and drives the partitions on the runtime's
//! scoped workers. Per-flow pipelines are independent (Genos/pForest make
//! the same observation for in-network forests), so sharding by flow is
//! semantically free; the only cross-shard artefact is digest order, which
//! is restored by an explicit merge.
//!
//! ## Determinism rules
//!
//! 1. **State partition is fixed.** Flows map to one of
//!    [`LOGICAL_SHARDS`] logical shards via a seeded bi-hash, *independent
//!    of the physical shard count*. Physical shards (`shards` in
//!    [`ShardedPipelineConfig`]) only group logical shards onto workers;
//!    regrouping never moves state. Hence replay output is byte-identical
//!    at 1, 2, or 8 physical shards and at any `IGUARD_WORKERS` setting.
//! 2. **Per-shard packet order is arrival order.** A batch is binned by
//!    shard in input order, and each shard consumes its bin sequentially,
//!    so a flow always sees its packets in sequence.
//! 3. **Digests merge by sequence number.** Every digest is tagged with
//!    the global arrival index of the packet that produced it; draining
//!    sorts the per-shard streams by that tag, not by thread completion
//!    order. At most one digest per packet makes the key unique, so the
//!    merged stream is a total order.
//!
//! Relative to the serial `Pipeline`, hash-slot collisions differ: each
//! logical shard owns `slots_per_table / LOGICAL_SHARDS` slots per table
//! (total capacity is preserved) and indexes them within the shard, so
//! *which* flows collide under pressure changes. Under no slot pressure
//! the two backends agree packet-for-packet — the parity test in
//! `tests/shard_invariance.rs` pins that.

use iguard_flow::batch::PacketBatch;
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::Packet;
use iguard_flow::table::{FlowTableConfig, FlowTableStats};
use iguard_runtime::par;
use iguard_runtime::scratch::ShardBins;
use iguard_runtime::Dataset;
use iguard_telemetry::{counter, histogram, span};

use iguard_core::rules::RuleSet;

use iguard_core::error::SwitchError;

use crate::data_plane::DataPlane;
use crate::pipeline::{
    record_batch_telemetry, update_overload, ControlAction, Digest, MatchEngine, MatchScratch,
    PacketVerdict, PathCounters, PathTaken, PipelineConfig, ProcessOutcome, SeqDigest, ShardState,
    WhitelistCounters, BATCH_CHUNK, RESYNC_SEQ_BASE,
};
use crate::ruleset::{RulesetCounters, RulesetTxn};

/// Number of logical state partitions. Fixed — it is the determinism
/// anchor: changing it changes which flows share a flow-table slot, so it
/// is a compile-time constant rather than a config knob.
pub const LOGICAL_SHARDS: usize = 16;

/// Seed of the shard-assignment hash (distinct from the flow-table seeds
/// so shard choice and slot choice stay uncorrelated).
const SHARD_HASH_SEED: u64 = 0x5AAD_ED51_0C7E_D001;

/// Logical shard owning a flow. Direction-symmetric (both directions of a
/// flow land on the same shard) via a commutative endpoint combine, like
/// [`FiveTuple::bi_hash`] — but a single avalanche round, because this
/// runs once per packet on the batch hot path and shard choice only needs
/// `log2(LOGICAL_SHARDS)` well-mixed bits, not a full 64-bit hash.
#[inline]
fn logical_shard_of(five: &FiveTuple) -> usize {
    let a = ((five.src_ip as u64) << 16) | five.src_port as u64;
    let b = ((five.dst_ip as u64) << 16) | five.dst_port as u64;
    let mut x = a.wrapping_add(b) ^ ((five.proto as u64) << 48) ^ SHARD_HASH_SEED;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    (x % LOGICAL_SHARDS as u64) as usize
}

/// Sharded-pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShardedPipelineConfig {
    /// The per-packet pipeline semantics (rules flags, flow-table shape).
    pub pipeline: PipelineConfig,
    /// Physical shard groups driven in parallel; clamped to
    /// `1..=LOGICAL_SHARDS`. Purely a performance knob — see the module
    /// determinism rules.
    pub shards: usize,
}

impl Default for ShardedPipelineConfig {
    fn default() -> Self {
        Self { pipeline: PipelineConfig::default(), shards: 4 }
    }
}

iguard_runtime::builder_setters! { ShardedPipelineConfig =>
    /// Builder: pipeline semantics.
    with_pipeline => pipeline: PipelineConfig,
    /// Builder: physical shard count.
    with_shards => shards: usize,
}

/// A pipeline config is a sharded config with the default shard count.
impl From<PipelineConfig> for ShardedPipelineConfig {
    fn from(pipeline: PipelineConfig) -> Self {
        Self { pipeline, ..Default::default() }
    }
}

/// A physical shard group: the logical shards one worker drives (each a
/// [`ShardState`] — a full, independent copy of the mutable data-plane
/// state for the flows hashed to it), plus the group's reusable outcome
/// buffer (one outcome per bin row, in bin order) and its private match
/// scratch (index bitmap words, deferred-lookup columns, whitelist
/// counters) — per group, not per shard, because one worker drives a
/// group serially.
struct Group {
    shards: Vec<ShardState>,
    outcomes: Vec<ProcessOutcome>,
    scratch: MatchScratch,
}

/// The sharded data plane.
pub struct ShardedPipeline {
    cfg: ShardedPipelineConfig,
    engine: MatchEngine,
    /// `groups[g].shards[p]` is logical shard `p * groups.len() + g`.
    groups: Vec<Group>,
    bins: ShardBins,
    /// The shared columnar view of the current batch: filled once per
    /// `process_batch` call, then read (immutably) by every group worker.
    batch: PacketBatch,
    /// Identity row index (`0..n`) for the single-group fast path.
    rows_idx: Vec<u32>,
    merge_scratch: Vec<SeqDigest>,
    /// Whitelist lookups performed by `classify_batch` (per-packet lookups
    /// live in each group's scratch; batch classification runs on
    /// transient per-chunk scratch and folds its counts in here).
    classify_wl: WhitelistCounters,
    processed: u64,
    /// Monotonic counter for resync digest sequence tags (offset from
    /// [`RESYNC_SEQ_BASE`], disjoint from packet sequence numbers).
    resync_seq: u64,
}

impl ShardedPipeline {
    pub fn new(
        cfg: impl Into<ShardedPipelineConfig>,
        fl_rules: RuleSet,
        pl_rules: RuleSet,
    ) -> Self {
        let cfg = cfg.into();
        let phys = cfg.shards.clamp(1, LOGICAL_SHARDS);
        // Preserve total capacity: each logical shard gets an equal cut of
        // the configured slots.
        let per_shard_slots = (cfg.pipeline.flow_table.slots_per_table / LOGICAL_SHARDS).max(1);
        let shard_cfg =
            FlowTableConfig { slots_per_table: per_shard_slots, ..cfg.pipeline.flow_table };
        let mut groups: Vec<Group> = (0..phys)
            .map(|_| Group {
                shards: Vec::new(),
                outcomes: Vec::new(),
                scratch: MatchScratch::default(),
            })
            .collect();
        for l in 0..LOGICAL_SHARDS {
            groups[l % phys].shards.push(ShardState::new(shard_cfg));
        }
        Self {
            engine: MatchEngine::new(&cfg.pipeline, fl_rules, pl_rules),
            cfg,
            groups,
            bins: ShardBins::new(),
            batch: PacketBatch::default(),
            rows_idx: Vec::new(),
            merge_scratch: Vec::new(),
            classify_wl: WhitelistCounters::default(),
            processed: 0,
            resync_seq: 0,
        }
    }

    /// Installs one whitelist per intermediate phase boundary. One engine
    /// is shared read-only by every shard group, so the single hitless
    /// epoch flip swaps the phase array for all 16 logical shards at once
    /// — between batches, like [`ShardedPipeline::apply_ruleset`].
    pub fn set_phase_rulesets(&mut self, rulesets: &[RuleSet]) {
        self.engine.set_phase_rulesets(rulesets);
    }

    pub fn config(&self) -> &ShardedPipelineConfig {
        &self.cfg
    }

    /// Physical shard groups in use (≤ [`LOGICAL_SHARDS`]).
    pub fn physical_shards(&self) -> usize {
        self.groups.len()
    }

    fn shard(&self, logical: usize) -> &ShardState {
        let phys = self.groups.len();
        &self.groups[logical % phys].shards[logical / phys]
    }

    fn shard_mut(&mut self, logical: usize) -> &mut ShardState {
        let phys = self.groups.len();
        &mut self.groups[logical % phys].shards[logical / phys]
    }

    /// Packets processed per logical shard, in logical-shard order.
    pub fn shard_packet_counts(&self) -> Vec<u64> {
        (0..LOGICAL_SHARDS).map(|l| self.shard(l).processed).collect()
    }

    /// Flow-table occupancy per logical shard, in logical-shard order.
    pub fn shard_occupancies(&self) -> Vec<usize> {
        (0..LOGICAL_SHARDS).map(|l| self.shard(l).flow.occupancy()).collect()
    }

    /// Overload view per logical shard, in logical-shard order — the
    /// unmerged constituents of [`DataPlane::overload_stats`], for tests
    /// and tooling that need to see *which* shards are degraded or what
    /// each shard's pressure reads rather than the fleet-wide summary.
    pub fn shard_overload_views(&self) -> Vec<crate::data_plane::OverloadStats> {
        (0..LOGICAL_SHARDS).map(|l| self.shard(l).overload_view()).collect()
    }

    /// Load-imbalance ratio: max over mean of per-shard packet counts
    /// (1.0 = perfectly balanced; 0.0 when nothing was processed).
    pub fn imbalance_ratio(&self) -> f64 {
        let counts = self.shard_packet_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / counts.len() as f64;
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// The installed TCAM image of the live ruleset epoch — one table,
    /// shared by every shard group and swapped for all of them in a
    /// single epoch flip.
    pub fn ruleset_table(&self) -> &crate::tcam::RangeTable {
        self.engine.ruleset_table()
    }

    /// The installed blacklist across all shards, in canonical sorted
    /// order (for equality checks across backends).
    pub fn blacklist_contents(&self) -> Vec<FiveTuple> {
        let mut v: Vec<FiveTuple> =
            (0..LOGICAL_SHARDS).flat_map(|l| self.shard(l).blacklist.iter().copied()).collect();
        v.sort_unstable();
        v
    }

    /// Drains every shard's digest buffer into `merge_scratch`, restoring
    /// global packet arrival order (seq is unique — at most one digest per
    /// packet — so the sort is a total, backend-independent order). Both
    /// drain flavours share this; returns the number merged.
    fn merge_digests(&mut self) -> usize {
        let Self { groups, merge_scratch, .. } = self;
        span!("switch.sharded.digest_merge").time(|| {
            merge_scratch.clear();
            for group in groups.iter_mut() {
                for shard in &mut group.shards {
                    merge_scratch.append(&mut shard.digests);
                }
            }
            merge_scratch.sort_unstable_by_key(|sd| sd.seq);
            merge_scratch.len()
        })
    }

    /// Occupancy telemetry only on productive drains — replay drains
    /// after every batch and most drains are empty.
    fn record_drain_occupancy(&self, drained: usize) {
        if drained > 0 {
            for l in 0..LOGICAL_SHARDS {
                histogram!("switch.sharded.shard_occupancy")
                    .record(self.shard(l).flow.occupancy() as u64);
            }
        }
    }
}

impl DataPlane for ShardedPipeline {
    fn process_batch(&mut self, pkts: &[Packet], out: &mut Vec<ProcessOutcome>) {
        out.clear();
        if pkts.is_empty() {
            return;
        }
        let Self { groups, bins, engine, processed, batch, rows_idx, cfg, .. } = self;
        let phys = groups.len();
        let overload_cfg = cfg.pipeline.overload;

        counter!("switch.sharded.batches").inc();
        histogram!("switch.sharded.batch_packets").record(pkts.len() as u64);
        record_batch_telemetry(pkts.len());

        // Columnar ingest once, shared read-only by every group worker.
        // `batch.keys` are canonical 5-tuples; `logical_shard_of` is
        // direction-symmetric, so hashing the canonical key picks the same
        // shard as hashing the wire-order tuple.
        batch.fill(pkts);
        let batch = &*batch;
        let base_seq = *processed;

        // Single physical group: every packet lands in group 0 and a
        // one-group binning pass is the identity permutation, so skip the
        // bin/scatter machinery and process in arrival order directly.
        // Output is identical to the general path by construction.
        if phys == 1 {
            let Group { shards, scratch, .. } = &mut groups[0];
            rows_idx.clear();
            rows_idx.extend(0..pkts.len() as u32);
            // Rows are walked in arrival order, so the engine writes the
            // outcome column directly — no group buffer or scatter pass.
            engine.process_rows(
                shards,
                |i| logical_shard_of(&batch.keys[i]),
                batch,
                pkts,
                rows_idx,
                base_seq,
                scratch,
                out,
            );
            // Hysteresis steps once per batch per *logical* shard — the
            // same schedule as the multi-group path below, so degraded-mode
            // transitions are grouping/worker invariant.
            for st in shards.iter_mut() {
                update_overload(st, &overload_cfg);
            }
            *processed += pkts.len() as u64;
            return;
        }

        // Bin packet indices by physical group, preserving arrival order.
        bins.reset(phys);
        for (i, key) in batch.keys.iter().enumerate() {
            bins.push(logical_shard_of(key) % phys, i as u32);
        }

        let bins = &*bins;
        let engine = &*engine;
        par::par_map_mut(groups, |g, group| {
            let bin = bins.bin(g);
            histogram!("switch.sharded.group_batch_packets").record(bin.len() as u64);
            let Group { shards, outcomes, scratch } = group;
            outcomes.clear();
            engine.process_rows(
                shards,
                |i| logical_shard_of(&batch.keys[i]) / phys,
                batch,
                pkts,
                bin,
                base_seq,
                scratch,
                outcomes,
            );
            // Every group steps all of its shards every batch (even shards
            // whose bin was empty this batch): the hysteresis clock is
            // per-batch, not per-packet, so it must tick uniformly.
            for st in shards.iter_mut() {
                update_overload(st, &overload_cfg);
            }
        });

        // Reassemble outcomes into packet order: each group emits one
        // outcome per bin row in bin order, and the bins partition
        // 0..pkts.len(), so every index is written exactly once.
        let placeholder = ProcessOutcome {
            verdict: PacketVerdict::Forward,
            path: PathTaken::Brown,
            mirrored: false,
        };
        out.resize(pkts.len(), placeholder);
        for (g, group) in self.groups.iter().enumerate() {
            debug_assert_eq!(self.bins.bin(g).len(), group.outcomes.len());
            for (&i, &outcome) in self.bins.bin(g).iter().zip(&group.outcomes) {
                out[i as usize] = outcome;
            }
        }
        self.processed += pkts.len() as u64;
    }

    fn drain_digests_into(&mut self, out: &mut Vec<Digest>) {
        let drained = self.merge_digests();
        out.extend(self.merge_scratch.iter().map(|sd| sd.digest));
        self.merge_scratch.clear();
        self.record_drain_occupancy(drained);
    }

    fn drain_seq_digests_into(&mut self, out: &mut Vec<SeqDigest>) {
        let drained = self.merge_digests();
        out.append(&mut self.merge_scratch);
        self.record_drain_occupancy(drained);
    }

    fn apply(&mut self, action: ControlAction) {
        let five = match action {
            ControlAction::InstallBlacklist(f)
            | ControlAction::RemoveBlacklist(f)
            | ControlAction::ClearFlow(f) => f,
        };
        let shard = self.shard_mut(logical_shard_of(&five));
        match action {
            ControlAction::InstallBlacklist(f) => {
                shard.blacklist.insert(f.canonical());
            }
            ControlAction::RemoveBlacklist(f) => {
                shard.blacklist.remove(&f.canonical());
            }
            ControlAction::ClearFlow(f) => {
                shard.flow.clear(&f);
            }
        }
    }

    fn apply_ruleset(&mut self, txn: &RulesetTxn) -> Result<(), SwitchError> {
        // One engine is shared read-only by every shard group, so a single
        // epoch flip swaps the ruleset for all shards at once — between
        // batches, per the trait contract.
        self.engine.apply_ruleset(txn)
    }

    fn ruleset_version(&self) -> u64 {
        self.engine.ruleset_version()
    }

    fn ruleset_counters(&self) -> RulesetCounters {
        self.engine.ruleset_counters()
    }

    fn blacklist_contents(&self) -> Vec<FiveTuple> {
        ShardedPipeline::blacklist_contents(self)
    }

    fn resync_labeled_into(&mut self, out: &mut Vec<SeqDigest>) {
        // Logical-shard order is fixed regardless of the physical
        // grouping, so the resync stream is shard/worker invariant.
        let mut flows = Vec::new();
        for l in 0..LOGICAL_SHARDS {
            self.shard(l).flow.labeled_flows_into(&mut flows);
        }
        for (five, malicious) in flows {
            out.push(SeqDigest {
                seq: RESYNC_SEQ_BASE + self.resync_seq,
                digest: Digest::new(five, malicious),
            });
            self.resync_seq += 1;
        }
    }

    fn whitelist_counters(&self) -> WhitelistCounters {
        // Per-packet lookups accumulate in group scratches; batch
        // classification counts live in `classify_wl`. Addition is
        // commutative, so the sum is grouping-invariant.
        self.groups.iter().fold(self.classify_wl, |acc, g| acc.merge(&g.scratch.wl))
    }

    fn classify_batch(&mut self, rows: &Dataset, out: &mut Vec<bool>) {
        out.clear();
        let n = rows.rows();
        if n == 0 {
            return;
        }
        // Fixed-size chunks with one transient scratch per chunk: chunk
        // boundaries don't depend on the worker count, so the verdict
        // vector (and the counter totals) are worker-invariant.
        record_batch_telemetry(n);
        let starts: Vec<usize> = (0..n).step_by(BATCH_CHUNK).collect();
        let engine = &self.engine;
        let parts = par::par_map_vec(starts, |start| {
            let end = (start + BATCH_CHUNK).min(n);
            let mut scratch = MatchScratch::default();
            let mut verdicts = Vec::with_capacity(end - start);
            engine.classify_fl_batch(rows, start, end, &mut scratch, &mut verdicts);
            (verdicts, scratch.wl)
        });
        for (verdicts, wl) in parts {
            out.extend(verdicts);
            self.classify_wl = self.classify_wl.merge(&wl);
        }
    }

    fn counters(&self) -> PathCounters {
        let mut total = PathCounters::default();
        for l in 0..LOGICAL_SHARDS {
            let p = self.shard(l).paths;
            total.blacklist += p.blacklist;
            total.brown += p.brown;
            total.blue += p.blue;
            total.orange += p.orange;
            total.purple += p.purple;
            total.green_loopback += p.green_loopback;
        }
        total
    }

    fn flow_table_stats(&self) -> FlowTableStats {
        (0..LOGICAL_SHARDS)
            .fold(FlowTableStats::default(), |acc, l| acc.merge(&self.shard(l).flow.stats()))
    }

    fn overload_stats(&self) -> crate::data_plane::OverloadStats {
        // Logical-shard order, like every other fold here, so the merged
        // view is identical at any physical grouping.
        (0..LOGICAL_SHARDS).fold(crate::data_plane::OverloadStats::default(), |acc, l| {
            acc.merge(&self.shard(l).overload_view())
        })
    }

    fn blacklist_len(&self) -> usize {
        (0..LOGICAL_SHARDS).map(|l| self.shard(l).blacklist.len()).sum()
    }

    fn packets_processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::{accept_all, fl_mean_size_below};
    use iguard_flow::five_tuple::PROTO_TCP;
    use iguard_flow::packet::TcpFlags;
    use iguard_flow::table::FlowTableConfig;
    use iguard_runtime::par::with_workers;

    fn pkt(flow: u16, ts_ms: u64, len: u16) -> Packet {
        Packet {
            ts_ns: ts_ms * 1_000_000,
            five: FiveTuple::new(0x0A000001, 0xC0A80101, 30_000 + flow, 80, PROTO_TCP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        }
    }

    fn cfg(threshold: u64, shards: usize) -> ShardedPipelineConfig {
        ShardedPipelineConfig::default()
            .with_pipeline(PipelineConfig::from(
                FlowTableConfig::default().with_pkt_threshold(threshold),
            ))
            .with_shards(shards)
    }

    fn mixed_batch(flows: u16, pkts_per_flow: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        for i in 0..(flows as u64 * pkts_per_flow) {
            let f = (i % flows as u64) as u16;
            let len = if f % 3 == 0 { 1400 } else { 120 };
            out.push(pkt(f, i, len));
        }
        out
    }

    /// Unwrap-audit regression: the imbalance ratio is total-function —
    /// zero traffic reads 0.0 (no division, no panic on the max fold)
    /// and stays finite after a single packet.
    #[test]
    fn imbalance_ratio_is_total() {
        let mut dp = ShardedPipeline::new(cfg(3, 4), accept_all(13), accept_all(4));
        assert_eq!(dp.imbalance_ratio(), 0.0);
        let mut out = Vec::new();
        dp.process_batch(&[pkt(1, 0, 120)], &mut out);
        let r = dp.imbalance_ratio();
        assert!(r.is_finite() && r >= 1.0, "ratio {r}");
    }

    #[test]
    fn batch_outcomes_match_serial_processing() {
        let batch = mixed_batch(24, 6);
        let mut sharded = ShardedPipeline::new(cfg(3, 4), accept_all(13), accept_all(4));
        let mut out = Vec::new();
        sharded.process_batch(&batch, &mut out);

        let mut serial = ShardedPipeline::new(cfg(3, 4), accept_all(13), accept_all(4));
        let mut one = Vec::new();
        let mut serial_out = Vec::new();
        for p in &batch {
            serial.process_batch(std::slice::from_ref(p), &mut one);
            serial_out.push(one[0]);
        }
        assert_eq!(out, serial_out, "batching must not change outcomes");
        assert_eq!(sharded.packets_processed(), batch.len() as u64);
    }

    #[test]
    fn digest_stream_is_seq_ordered_and_shard_invariant() {
        let batch = mixed_batch(32, 5);
        let run = |shards: usize, workers: usize| {
            with_workers(workers, || {
                let mut dp =
                    ShardedPipeline::new(cfg(3, shards), fl_mean_size_below(800.0), accept_all(4));
                let mut out = Vec::new();
                dp.process_batch(&batch, &mut out);
                let mut digests = Vec::new();
                dp.drain_digests_into(&mut digests);
                (out, digests, dp.blacklist_contents(), dp.counters())
            })
        };
        let base = run(1, 1);
        assert!(!base.1.is_empty(), "blue path should emit digests");
        for (shards, workers) in [(2, 1), (8, 1), (1, 8), (8, 8), (16, 4)] {
            assert_eq!(run(shards, workers), base, "{shards} shards / {workers} workers differ");
        }
    }

    #[test]
    fn apply_routes_to_owning_shard() {
        let mut dp = ShardedPipeline::new(cfg(3, 8), accept_all(13), accept_all(4));
        let five = pkt(1, 0, 100).five;
        dp.apply(ControlAction::InstallBlacklist(five));
        assert_eq!(dp.blacklist_len(), 1);
        let mut out = Vec::new();
        dp.process_batch(&[pkt(1, 0, 100)], &mut out);
        assert_eq!(out[0].path, PathTaken::Blacklist);
        // Reverse direction blocked too (canonical key + bi-hash shard).
        let mut rev = pkt(1, 1, 100);
        rev.five = rev.five.reversed();
        dp.process_batch(&[rev], &mut out);
        assert_eq!(out[0].path, PathTaken::Blacklist);
        dp.apply(ControlAction::RemoveBlacklist(five));
        assert_eq!(dp.blacklist_len(), 0);
    }

    #[test]
    fn counters_and_stats_aggregate_across_shards() {
        let batch = mixed_batch(20, 4);
        let mut dp = ShardedPipeline::new(cfg(2, 4), accept_all(13), accept_all(4));
        let mut out = Vec::new();
        dp.process_batch(&batch, &mut out);
        assert_eq!(dp.counters().total_offered(), batch.len() as u64);
        let stats = dp.flow_table_stats();
        assert!(stats.occupancy > 0);
        assert_eq!(stats.capacity, 2 * (4096 / LOGICAL_SHARDS) * LOGICAL_SHARDS);
        assert!(dp.imbalance_ratio() >= 1.0);
        assert_eq!(dp.shard_packet_counts().iter().sum::<u64>(), batch.len() as u64);
    }

    #[test]
    fn clear_flow_releases_shard_storage() {
        let mut dp = ShardedPipeline::new(cfg(5, 2), accept_all(13), accept_all(4));
        let mut out = Vec::new();
        dp.process_batch(&[pkt(7, 0, 100)], &mut out);
        assert_eq!(dp.flow_table_stats().occupancy, 1);
        dp.apply(ControlAction::ClearFlow(pkt(7, 0, 100).five));
        assert_eq!(dp.flow_table_stats().occupancy, 0);
    }
}
