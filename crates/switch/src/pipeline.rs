//! The per-packet match-action pipeline of paper Fig. 4.
//!
//! Six execution paths, colour-coded as in the figure:
//!
//! * **red** — 5-tuple hits the blacklist table: drop immediately;
//! * **brown** — 1..(n−1)-th packet of a tracked flow: update state, match
//!   *packet-level* features against the PL whitelist;
//! * **blue** — n-th packet or idle timeout: match PL+FL features against
//!   the whitelists, emit a digest, mirror to the loopback port (green) to
//!   write the flow label;
//! * **orange** — both hash-table slots hold other flows: match PL
//!   features only (an unclassified resident keeps its slot; a classified
//!   one is evicted for the new flow);
//! * **purple** — flow already classified: decide from the flow-label
//!   register, no feature work;
//! * **green** — the loopback copy of a blue packet: updates the flow
//!   label storage (emulated synchronously; counted for latency).
//!
//! Two implementations of the walk coexist: the scalar per-packet
//! [`MatchEngine::process_one`] (the reference/oracle path, also the
//! [`ScalarPipeline`] baseline) and the columnar
//! [`MatchEngine::process_rows`] (the production hot path), which
//! consumes a structure-of-arrays [`PacketBatch`], defers the stateless
//! brown/orange packet-level lookups to one batched index probe per
//! [`BATCH_CHUNK`]-row chunk, and writes verdicts back into a
//! preallocated outcome column. The two are parity-pinned byte for byte
//! (verdicts, digests, counters) by debug assertions and the
//! `soa_parity` suite.

use std::collections::HashSet;

use iguard_core::error::SwitchError;
use iguard_core::rule_index::{BatchScratch, RuleIndex};
use iguard_core::rules::RuleSet;
use iguard_flow::batch::{FeatureColumns, PacketBatch};
use iguard_flow::features::{
    log_compress, log_compress_vec, packet_level_features, switch_fl_features,
    switch_fl_features_into, PL_DIM, SWITCH_FL_DIM,
};
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::Packet;
use iguard_flow::table::{
    FlowShard, FlowTableConfig, FlowTableStats, InsertOutcome, ObserveTallies,
};
use iguard_runtime::Dataset;
use iguard_telemetry::{counter, histogram};

use crate::data_plane::DataPlane;
use crate::rule_index::RangeIndex;
use crate::ruleset::{apply_delta, RulesetCounters, RulesetTxn};
use crate::tcam::RangeTable;

/// Fixed row-chunk size of the batched hot path. Both backends cut every
/// batch — packets in `process_batch`, dataset rows in `classify_batch` —
/// at the same 1024-row boundaries, so scratch high-water marks, counter
/// totals, and verdict vectors never depend on worker or shard count.
pub(crate) const BATCH_CHUNK: usize = 1024;

/// Phase tag of a digest produced outside the phase ladder: the final
/// packet-threshold blue path, an idle-timeout flush, or a post-outage
/// resync rederivation. Intermediate phase convictions carry their
/// 0-based boundary index instead.
pub const FINAL_PHASE: u8 = u8::MAX;

/// Digest payload sent to the controller: 13 B flow ID + 1-bit label
/// (paper App. B.2), plus the deciding phase — which look at the flow
/// produced this verdict (an intermediate boundary index, or
/// [`FINAL_PHASE`] for the single-shot path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Digest {
    pub five: FiveTuple,
    pub malicious: bool,
    /// Deciding phase: 0-based boundary index, or [`FINAL_PHASE`].
    pub phase: u8,
}

impl Digest {
    /// A single-shot digest (final threshold / timeout / resync).
    pub fn new(five: FiveTuple, malicious: bool) -> Self {
        Self { five, malicious, phase: FINAL_PHASE }
    }

    /// A digest emitted by an intermediate phase-boundary conviction.
    pub fn at_phase(five: FiveTuple, malicious: bool, phase: u8) -> Self {
        Self { five, malicious, phase }
    }
}

/// Effective digest size on the wire for iGuard (13 B + 1 bit).
pub const DIGEST_BYTES_IGUARD: f64 = 13.125;
/// Digest size for control-plane-detection designs that must also ship
/// ~52 B of flow features (paper App. B.2).
pub const DIGEST_BYTES_HORUSEYE: f64 = 65.125;

/// Commands the controller issues back to the data plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlAction {
    InstallBlacklist(FiveTuple),
    RemoveBlacklist(FiveTuple),
    /// Release the flow's stateful storage.
    ClearFlow(FiveTuple),
}

/// Final disposition of a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketVerdict {
    Forward,
    Drop,
}

/// Which Fig.-4 path the packet took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathTaken {
    /// Red: blacklist hit.
    Blacklist,
    /// Brown: early packet, PL-feature decision.
    Brown,
    /// Blue: n-th packet / timeout, PL+FL decision + digest + loopback.
    Blue,
    /// Orange: hash collision, PL-feature decision.
    Orange,
    /// Purple: early decision from the flow-label register.
    Purple,
}

/// Per-path packet counters (the green/loopback count is separate because
/// loopback packets are copies, not offered traffic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathCounters {
    pub blacklist: u64,
    pub brown: u64,
    pub blue: u64,
    pub orange: u64,
    pub purple: u64,
    /// Green-path loopback copies generated by blue packets.
    pub green_loopback: u64,
}

impl PathCounters {
    pub fn total_offered(&self) -> u64 {
        self.blacklist + self.brown + self.blue + self.orange + self.purple
    }
}

/// Overload-layer configuration: digest buffer bound and the hysteresis
/// thresholds of the per-shard degraded mode. All decisions driven by
/// this config are pure functions of per-logical-shard deterministic
/// state (the flow table's pressure signal and the batch count), so they
/// are byte-identical across worker counts and shard groupings.
#[derive(Clone, Copy, Debug)]
pub struct OverloadConfig {
    /// Most digests one shard buffers between drains. At the cap the
    /// buffer sheds deterministically by priority: malicious-evidence
    /// digests outlive benign ones (see `OverloadState::push_digest`).
    pub digest_buffer_cap: usize,
    /// Enter degraded mode when the shard's pressure (per-mille) reaches
    /// this. Must be above 500: a full-but-quiet table reads at most 500,
    /// so only sustained churn can trip entry.
    pub degrade_enter_milli: u32,
    /// A batch is "calm" when pressure is at or below this.
    pub degrade_exit_milli: u32,
    /// Consecutive calm batches required to leave degraded mode (the
    /// hysteresis band that stops pulse edges from flapping the mode).
    pub degrade_calm_batches: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            digest_buffer_cap: 1 << 16,
            degrade_enter_milli: 750,
            degrade_exit_milli: 500,
            degrade_calm_batches: 4,
        }
    }
}

impl OverloadConfig {
    /// Builder: per-shard digest buffer cap.
    pub fn with_digest_buffer_cap(mut self, cap: usize) -> Self {
        self.digest_buffer_cap = cap;
        self
    }

    /// Builder: degraded-mode entry threshold (per-mille pressure).
    pub fn with_degrade_enter_milli(mut self, milli: u32) -> Self {
        self.degrade_enter_milli = milli;
        self
    }

    /// Builder: calm threshold (per-mille pressure).
    pub fn with_degrade_exit_milli(mut self, milli: u32) -> Self {
        self.degrade_exit_milli = milli;
        self
    }

    /// Builder: consecutive calm batches required to exit degraded mode.
    pub fn with_degrade_calm_batches(mut self, batches: u32) -> Self {
        self.degrade_calm_batches = batches;
        self
    }
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    pub flow_table: FlowTableConfig,
    /// Drop packets judged malicious (else forward to a quarantine port —
    /// still counted as a positive detection).
    pub drop_malicious: bool,
    /// Whether the installed FL whitelist was trained on log-compressed
    /// features (see `iguard_flow::features::log_compress`); the pipeline
    /// then applies the same monotone map before matching. On hardware the
    /// equivalent is exponentiating the rule boundaries at install time.
    pub log_compress: bool,
    /// Overload-survival behaviour (degraded mode + digest shedding).
    pub overload: OverloadConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            flow_table: FlowTableConfig::default(),
            drop_malicious: true,
            log_compress: false,
            overload: OverloadConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// Builder: flow-table configuration.
    pub fn with_flow_table(mut self, flow_table: FlowTableConfig) -> Self {
        self.flow_table = flow_table;
        self
    }

    /// Builder: drop (true) vs quarantine-forward (false) detected packets.
    pub fn with_drop_malicious(mut self, drop: bool) -> Self {
        self.drop_malicious = drop;
        self
    }

    /// Builder: apply the log-compress map before FL matching.
    pub fn with_log_compress(mut self, on: bool) -> Self {
        self.log_compress = on;
        self
    }

    /// Builder: overload-survival configuration.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }
}

/// A bare flow-table config is a pipeline config with defaults elsewhere —
/// lets `Pipeline::new(FlowTableConfig::default().with_pkt_threshold(4), …)`
/// read naturally.
impl From<FlowTableConfig> for PipelineConfig {
    fn from(flow_table: FlowTableConfig) -> Self {
        Self { flow_table, ..Default::default() }
    }
}

/// Outcome of processing one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessOutcome {
    pub verdict: PacketVerdict,
    pub path: PathTaken,
    /// Whether this packet generated a loopback copy (second pipeline pass).
    pub mirrored: bool,
}

/// A digest tagged with the global arrival sequence number of the packet
/// that produced it — the sort key the sharded backend merges by, and the
/// idempotence key the controller's dedup window tracks when the digest
/// channel can duplicate deliveries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeqDigest {
    pub seq: u64,
    pub digest: Digest,
}

/// Sequence-number base for control-plane **resync** digests (re-derived
/// from resident flow labels after a channel outage). Packet digests use
/// the global arrival index, which stays far below this bit, so the two
/// sequence spaces never collide in the controller's dedup window.
pub const RESYNC_SEQ_BASE: u64 = 1 << 63;

/// Whitelist-lookup counters a backend accumulates: how many times the
/// compiled rule index was consulted (FL + PL lookups) and how many of
/// those matched a whitelist rule. Deterministic across worker counts and
/// shard groupings — lookups are a pure function of which packets each
/// flow sees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WhitelistCounters {
    pub lookups: u64,
    pub hits: u64,
}

impl WhitelistCounters {
    pub fn merge(&self, other: &Self) -> Self {
        Self { lookups: self.lookups + other.lookups, hits: self.hits + other.hits }
    }
}

/// Reusable per-worker lookup scratch threaded through
/// [`MatchEngine::process_one`] and the batched entry points: the index's
/// bitmap AND accumulators, feature-row/column buffers, the deferred-PL
/// work list, and the whitelist counters. One per serial pipeline / per
/// shard group, so the hot path never allocates and parallel workers
/// never share mutable state.
#[derive(Clone, Debug, Default)]
pub(crate) struct MatchScratch {
    words: Vec<u64>,
    row: Vec<f32>,
    pub(crate) wl: WhitelistCounters,
    /// Deferred packet-level lookups of the current chunk: `(batch row,
    /// position in the outcome column)` for brown/orange packets, whose
    /// PL decision is stateless and can be resolved columnar after the
    /// stateful walk.
    pending: Vec<(u32, u32)>,
    /// Gathered PL feature columns of the pending rows.
    pend_cols: FeatureColumns,
    /// Transposed FL feature columns of one `classify_batch` chunk.
    fl_cols: FeatureColumns,
    /// Row-major bitmap accumulator of the batch index probes.
    bscratch: BatchScratch,
    /// First-match results of the latest batch probe.
    hits: Vec<Option<u32>>,
    /// Precomputed flow-table slot pairs of the current chunk's rows —
    /// hashed up front in one tight loop so the stateful walk can
    /// prefetch slots ahead of itself.
    slot_idx: Vec<(u32, u32)>,
    /// Deferred flow-table telemetry, flushed once per chunk.
    tallies: ObserveTallies,
}

/// The complete mutable data-plane state of one logical shard: its flow
/// table partition, blacklist, pending digest buffer, path counters, and
/// packets-processed count. The serial [`Pipeline`] owns exactly one
/// full-size instance; the sharded backend owns
/// [`crate::sharded::LOGICAL_SHARDS`] — both walk packets through
/// [`MatchEngine::process_rows`] against this same shape.
pub(crate) struct ShardState {
    pub(crate) flow: FlowShard,
    pub(crate) blacklist: HashSet<FiveTuple>,
    pub(crate) digests: Vec<SeqDigest>,
    pub(crate) paths: PathCounters,
    pub(crate) processed: u64,
    pub(crate) overload: OverloadState,
}

impl ShardState {
    pub(crate) fn new(cfg: FlowTableConfig) -> Self {
        Self {
            flow: FlowShard::new(cfg),
            blacklist: HashSet::new(),
            digests: Vec::new(),
            paths: PathCounters::default(),
            processed: 0,
            overload: OverloadState::default(),
        }
    }

    /// This shard's contribution to [`crate::data_plane::OverloadStats`].
    pub(crate) fn overload_view(&self) -> crate::data_plane::OverloadStats {
        crate::data_plane::OverloadStats {
            pressure: self.flow.pressure_stats(),
            degraded_shards: self.overload.degraded as u32,
            degraded_entries: self.overload.entries,
            degraded_exits: self.overload.exits,
            degraded_batches: self.overload.degraded_batches,
            shed_benign: self.overload.shed_benign,
            shed_malicious: self.overload.shed_malicious,
            admission_tightened: self.overload.admission_tightened,
            digest_buffered_hwm: self.overload.buffered_hwm,
        }
    }
}

/// Per-shard overload state: the hysteretic degraded-mode flag plus the
/// shedding/residency accounting it drives. Advanced once per batch by
/// [`update_overload`]; consulted on every digest push. Everything here
/// is derived from the shard's own packet stream and batch count, never
/// from wall-clock or sibling shards — a storm degrading one shard leaves
/// the others' state untouched.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct OverloadState {
    /// In degraded mode: benign digests are shed at the source and (in
    /// the sketch-assisted backend) admission demands more evidence.
    pub(crate) degraded: bool,
    /// Consecutive calm batches seen while degraded.
    calm: u32,
    pub(crate) entries: u64,
    pub(crate) exits: u64,
    /// Batches spent degraded (residency, in batch ticks).
    pub(crate) degraded_batches: u64,
    pub(crate) shed_benign: u64,
    pub(crate) shed_malicious: u64,
    /// Sketch admissions rejected only because pressure raised the
    /// promote threshold (see `SketchedPipeline`).
    pub(crate) admission_tightened: u64,
    /// Most digests ever buffered at once.
    pub(crate) buffered_hwm: usize,
    /// High-water marks already flushed to the telemetry counters (the
    /// counters advance by delta, so their totals track the marks).
    reported_occ_hwm: usize,
    reported_coll_hwm: u64,
}

impl OverloadState {
    /// Bounded digest buffering with deterministic priority shedding —
    /// the only way digests enter a shard's buffer.
    ///
    /// * Degraded mode sheds benign digests at the source: the flow keeps
    ///   its written label and later packets still take the purple path,
    ///   so verdicts are unchanged — only the controller's ClearFlow
    ///   housekeeping is deferred.
    /// * At the buffer cap, an incoming malicious digest displaces the
    ///   oldest *benign* one (malicious evidence outlives benign); an
    ///   incoming benign digest is dropped; a cap-full all-malicious
    ///   buffer keeps its earliest evidence and drops the newcomer.
    pub(crate) fn push_digest(
        &mut self,
        buf: &mut Vec<SeqDigest>,
        sd: SeqDigest,
        cfg: &OverloadConfig,
    ) {
        if self.degraded && !sd.digest.malicious {
            self.shed_benign += 1;
            counter!("switch.overload.shed_benign").inc();
            return;
        }
        if buf.len() >= cfg.digest_buffer_cap {
            if sd.digest.malicious {
                if let Some(i) = buf.iter().position(|d| !d.digest.malicious) {
                    // O(cap) shift, paid only while a storm overflows the
                    // buffer; removal preserves the seq order the merge
                    // relies on.
                    buf.remove(i);
                    self.shed_benign += 1;
                    counter!("switch.overload.shed_benign").inc();
                } else {
                    self.shed_malicious += 1;
                    counter!("switch.overload.shed_malicious").inc();
                    return;
                }
            } else {
                self.shed_benign += 1;
                counter!("switch.overload.shed_benign").inc();
                return;
            }
        }
        buf.push(sd);
        self.buffered_hwm = self.buffered_hwm.max(buf.len());
    }
}

/// Advances one shard's overload state by one batch: records the pressure
/// gauge, raises the occupancy/collision high-water-mark counters by
/// their deltas, and steps the hysteretic degraded-mode machine — enter
/// immediately at `degrade_enter_milli`, exit only after
/// `degrade_calm_batches` consecutive batches at or below
/// `degrade_exit_milli`. Called exactly once per `process_batch` per
/// logical shard by every backend, so mode transitions are invariant
/// under worker count and shard grouping.
pub(crate) fn update_overload(state: &mut ShardState, cfg: &OverloadConfig) {
    let ps = state.flow.pressure_stats();
    histogram!("switch.flow_table.pressure").record(ps.pressure_milli as u64);
    let o = &mut state.overload;
    if ps.occupancy_hwm > o.reported_occ_hwm {
        counter!("switch.flow_table.occupancy_hwm")
            .add((ps.occupancy_hwm - o.reported_occ_hwm) as u64);
        o.reported_occ_hwm = ps.occupancy_hwm;
    }
    if ps.collision_window_hwm > o.reported_coll_hwm {
        counter!("switch.flow_table.collision_hwm")
            .add(ps.collision_window_hwm - o.reported_coll_hwm);
        o.reported_coll_hwm = ps.collision_window_hwm;
    }
    if o.degraded {
        o.degraded_batches += 1;
        if ps.pressure_milli <= cfg.degrade_exit_milli {
            o.calm += 1;
            if o.calm >= cfg.degrade_calm_batches {
                o.degraded = false;
                o.calm = 0;
                o.exits += 1;
                counter!("switch.overload.degraded_exit").inc();
            }
        } else {
            o.calm = 0;
        }
    } else if ps.pressure_milli >= cfg.degrade_enter_milli {
        o.degraded = true;
        o.calm = 0;
        o.entries += 1;
        counter!("switch.overload.degraded_enter").inc();
    }
}

/// A whitelist with its compiled first-match index. All verdicts go
/// through the index; debug builds cross-check every lookup against the
/// linear scan, and the exhaustive parity suite pins the equivalence in
/// release.
#[derive(Clone)]
pub(crate) struct IndexedWhitelist {
    rules: RuleSet,
    index: RuleIndex,
}

impl IndexedWhitelist {
    fn new(rules: RuleSet) -> Self {
        let index = rules.build_index();
        Self { rules, index }
    }

    /// Malicious iff no whitelist rule matches — identical to
    /// [`RuleSet::predict`], resolved through the index.
    fn predict(&self, x: &[f32], words: &mut Vec<u64>, wl: &mut WhitelistCounters) -> bool {
        wl.lookups += 1;
        let hit = self.index.lookup(x, words);
        debug_assert_eq!(hit, self.rules.lookup(x), "compiled index diverged from linear scan");
        if hit.is_some() {
            wl.hits += 1;
        }
        hit.is_none()
    }

    /// Columnar [`IndexedWhitelist::predict`] over a whole chunk: fills
    /// `hits` with the first-match rule per row (`None` ⇒ malicious).
    /// Counter totals equal `cols.rows()` scalar calls, and debug builds
    /// re-assert every row against the linear scan — the scalar oracle of
    /// the batch path.
    fn predict_batch(
        &self,
        cols: &FeatureColumns,
        scratch: &mut BatchScratch,
        hits: &mut Vec<Option<u32>>,
        wl: &mut WhitelistCounters,
    ) {
        let views: Vec<&[f32]> = (0..cols.dims()).map(|d| cols.column(d)).collect();
        self.predict_batch_views(&views, scratch, hits, wl);
    }

    /// [`IndexedWhitelist::predict_batch`] on raw column view slices —
    /// lets callers probe sub-ranges of an existing batch's columns
    /// without a gather copy.
    fn predict_batch_views(
        &self,
        views: &[&[f32]],
        scratch: &mut BatchScratch,
        hits: &mut Vec<Option<u32>>,
        wl: &mut WhitelistCounters,
    ) {
        wl.lookups += views.first().map_or(0, |c| c.len()) as u64;
        self.index.lookup_batch(views, scratch, hits);
        wl.hits += hits.iter().filter(|h| h.is_some()).count() as u64;
        #[cfg(debug_assertions)]
        {
            let mut row = Vec::new();
            for (i, h) in hits.iter().enumerate() {
                row.clear();
                row.extend(views.iter().map(|c| c[i]));
                debug_assert_eq!(
                    h.map(|b| b as usize),
                    self.rules.lookup(&row),
                    "batch probe diverged from linear scan at row {i}"
                );
            }
        }
    }
}

/// One complete, self-consistent generation of the installed FL
/// whitelist: the float rules the hot path matches on, and the compiled
/// TCAM image (entry table + first-match [`RangeIndex`]) the same
/// generation was installed from. Both halves swap together, so the
/// emulated float match and the modelled TCAM contents can never skew.
struct WhitelistEpoch {
    /// Float-side whitelist with its compiled index.
    fl: IndexedWhitelist,
    /// The installed TCAM image, canonical `(priority, fields)` order.
    table: RangeTable,
    /// Compiled first-match index of `table`.
    index: RangeIndex,
    /// Per-phase whitelists, index-aligned with the flow table's
    /// [`iguard_flow::table::PhaseSchedule`] boundaries. Empty = phase
    /// evaluation disabled (every boundary look escalates). Part of the
    /// epoch so a swap flips all phases and the final ruleset together.
    phases: Vec<IndexedWhitelist>,
}

/// The per-packet match-action logic, factored out of [`Pipeline`] so the
/// serial and sharded backends share one decision procedure. Holds only
/// read-only state (the installed rules, their compiled indexes, and the
/// config flags); the mutable flow/blacklist/digest state — and the
/// per-worker lookup scratch — is passed in per call, which is what lets
/// shards run it concurrently on disjoint state.
///
/// ## Hitless ruleset swap
///
/// The FL whitelist is **double-buffered**: `epochs[active]` serves every
/// lookup while [`MatchEngine::apply_ruleset`] builds the successor
/// generation completely in the other slot — table, compiled index, and
/// float rules — and only then flips `active`. The flip is a plain word
/// write under `&mut self`, which the [`DataPlane`] contract confines to
/// the gap between batches: every packet is classified by exactly one
/// complete ruleset and zero packets observe a partial table. (On real
/// hardware the same discipline is a release-store of the active-buffer
/// pointer after the staging writes; see DESIGN.md §13.)
pub(crate) struct MatchEngine {
    /// Double-buffered whitelist generations over the 13 switch FL
    /// features; `epochs[active]` is live, the other slot is staging.
    epochs: [WhitelistEpoch; 2],
    active: usize,
    /// Version of the live epoch (0 until the first transaction).
    version: u64,
    /// Whitelist over the 4 PL features (not part of the drift loop).
    pl_rules: IndexedWhitelist,
    drop_malicious: bool,
    log_compress: bool,
    /// Digest-shedding configuration consulted at every digest push.
    overload: OverloadConfig,
    ruleset_stats: RulesetCounters,
}

impl MatchEngine {
    pub(crate) fn new(cfg: &PipelineConfig, fl_rules: RuleSet, pl_rules: RuleSet) -> Self {
        assert_eq!(fl_rules.bounds.len(), 13, "FL rules must cover the 13 switch features");
        assert_eq!(pl_rules.bounds.len(), 4, "PL rules must cover the 4 packet features");
        let epoch = || {
            let table = RangeTable::default();
            WhitelistEpoch {
                fl: IndexedWhitelist::new(fl_rules.clone()),
                index: RangeIndex::build(&table),
                table,
                phases: Vec::new(),
            }
        };
        Self {
            epochs: [epoch(), epoch()],
            active: 0,
            version: 0,
            pl_rules: IndexedWhitelist::new(pl_rules),
            drop_malicious: cfg.drop_malicious,
            log_compress: cfg.log_compress,
            overload: cfg.overload,
            ruleset_stats: RulesetCounters::default(),
        }
    }

    /// The live FL whitelist generation.
    fn fl_rules(&self) -> &IndexedWhitelist {
        &self.epochs[self.active].fl
    }

    /// The live whitelist of intermediate phase `phase`, if one is
    /// installed. `None` means the boundary look has no model — the
    /// packet escalates exactly like a brown early packet.
    fn phase_rules(&self, phase: u8) -> Option<&IndexedWhitelist> {
        self.epochs[self.active].phases.get(phase as usize)
    }

    /// Number of per-phase whitelists in the live epoch.
    pub(crate) fn phase_count(&self) -> usize {
        self.epochs[self.active].phases.len()
    }

    /// Installs one whitelist ruleset per intermediate phase, replacing
    /// any previous phase array. Hitless: the phase array is staged in
    /// the inactive epoch next to a copy of the live FL generation, and
    /// `active` flips only once the slot is complete — the same
    /// double-buffer discipline as [`MatchEngine::apply_ruleset`], so all
    /// phases (and the final ruleset) always swap together.
    pub(crate) fn set_phase_rulesets(&mut self, rulesets: &[RuleSet]) {
        for rs in rulesets {
            assert_eq!(rs.bounds.len(), 13, "phase rules must cover the 13 switch features");
        }
        let live = &self.epochs[self.active];
        let staged = WhitelistEpoch {
            fl: live.fl.clone(),
            index: RangeIndex::build(&live.table),
            table: live.table.clone(),
            phases: rulesets.iter().map(|r| IndexedWhitelist::new(r.clone())).collect(),
        };
        self.epochs[1 - self.active] = staged;
        self.active = 1 - self.active;
        counter!("switch.phase.rulesets_installed").add(rulesets.len() as u64);
    }

    /// Applies a versioned ruleset transaction (see [`crate::ruleset`]).
    ///
    /// * `txn.version == version + 1` — the successor epoch is staged in
    ///   the inactive buffer (delta applied to the live table, index and
    ///   float rules rebuilt) and `active` flips once it is complete.
    /// * `txn.version <= version` — idempotent replay: no-op, `Ok`.
    /// * anything newer — [`SwitchError::StaleRuleset`]; the live epoch
    ///   keeps serving.
    pub(crate) fn apply_ruleset(&mut self, txn: &RulesetTxn) -> Result<(), SwitchError> {
        if txn.version <= self.version {
            self.ruleset_stats.replayed += 1;
            counter!("switch.ruleset.replayed").inc();
            return Ok(());
        }
        let expected = self.version + 1;
        if txn.version != expected {
            self.ruleset_stats.stale += 1;
            counter!("switch.ruleset.stale").inc();
            return Err(SwitchError::StaleRuleset { expected, got: txn.version });
        }
        assert_eq!(
            txn.fl_rules.bounds.len(),
            13,
            "transaction FL rules must cover the 13 switch features"
        );
        let live = &self.epochs[self.active];
        let table = match apply_delta(
            &live.table,
            &txn.installs,
            &txn.removes,
            &txn.field_bits,
            expected,
            txn.version,
        ) {
            Ok(t) => t,
            Err(e) => {
                self.ruleset_stats.stale += 1;
                counter!("switch.ruleset.stale").inc();
                return Err(e);
            }
        };
        // Stage the successor completely before the flip: after this
        // assignment the inactive slot holds a full, self-consistent
        // ruleset, and only then does `active` move.
        self.epochs[1 - self.active] = WhitelistEpoch {
            fl: IndexedWhitelist::new(txn.fl_rules.clone()),
            index: RangeIndex::build(&table),
            table,
            // Phase whitelists ride along unchanged: a final-ruleset swap
            // must never silently drop the phase array.
            phases: self.epochs[self.active].phases.clone(),
        };
        self.active = 1 - self.active;
        self.version = txn.version;
        self.ruleset_stats.installed += txn.installs.len() as u64;
        self.ruleset_stats.removed += txn.removes.len() as u64;
        self.ruleset_stats.swaps += 1;
        counter!("switch.ruleset.installed").add(txn.installs.len() as u64);
        counter!("switch.ruleset.removed").add(txn.removes.len() as u64);
        counter!("switch.ruleset.swaps").inc();
        Ok(())
    }

    /// Version of the live ruleset epoch.
    pub(crate) fn ruleset_version(&self) -> u64 {
        self.version
    }

    /// Lifecycle accounting of the ruleset transactions seen so far.
    pub(crate) fn ruleset_counters(&self) -> RulesetCounters {
        self.ruleset_stats
    }

    /// The live epoch's installed TCAM image (empty until a transaction
    /// installs one — backends constructed directly from float rules model
    /// their table only once the lifecycle API takes over).
    pub(crate) fn ruleset_table(&self) -> &RangeTable {
        &self.epochs[self.active].table
    }

    /// Compiled first-match index of the live TCAM image; rebuilt in the
    /// staging slot on every accepted transaction, so it always resolves
    /// exactly like [`Self::ruleset_table`].
    pub(crate) fn ruleset_index(&self) -> &RangeIndex {
        &self.epochs[self.active].index
    }

    /// FL verdict for one raw 13-feature row: applies the configured
    /// log-compress map into the scratch row buffer (the installed rules
    /// were trained on compressed features), then resolves through the
    /// compiled index. The batch classification entry points build on this.
    pub(crate) fn classify_fl(&self, row: &[f32], scratch: &mut MatchScratch) -> bool {
        let MatchScratch { words, row: buf, wl, .. } = scratch;
        let x: &[f32] = if self.log_compress {
            buf.clear();
            buf.extend_from_slice(row);
            iguard_flow::features::log_compress_vec(buf);
            buf
        } else {
            row
        };
        self.fl_rules().predict(x, words, wl)
    }

    /// PL-whitelist verdict on one packet-level feature row — the
    /// stateless brown/orange decision, exposed for the sketch-assisted
    /// backend's scalar walk.
    pub(crate) fn predict_pl(&self, pl: &[f32], scratch: &mut MatchScratch) -> bool {
        self.pl_rules.predict(pl, &mut scratch.words, &mut scratch.wl)
    }

    /// Blue-path verdict from a frozen flow-stats record: the FL whitelist
    /// (under the configured log-compression) OR-merged with the PL
    /// verdict, with the same short-circuit order as
    /// [`MatchEngine::process_one`] so whitelist counters stay identical.
    pub(crate) fn predict_blue(
        &self,
        stats: &iguard_flow::stats::FlowStats,
        pl: &[f32],
        scratch: &mut MatchScratch,
    ) -> bool {
        iguard_flow::features::switch_fl_features_into(stats, &mut scratch.row);
        if self.log_compress {
            log_compress_vec(&mut scratch.row);
        }
        // `row` (immutable) and `words`/`wl` (mutable) are disjoint fields.
        let MatchScratch { row, words, wl, .. } = scratch;
        self.fl_rules().predict(row, words, wl) || self.pl_rules.predict(pl, words, wl)
    }

    /// Phase-boundary conviction probe: the per-phase FL whitelist only
    /// (convict-only — the PL rules never pull a verdict forward).
    /// `false` when no whitelist is installed for this phase.
    pub(crate) fn predict_phase(
        &self,
        phase: u8,
        stats: &iguard_flow::stats::FlowStats,
        scratch: &mut MatchScratch,
    ) -> bool {
        match self.phase_rules(phase) {
            Some(pwl) => {
                iguard_flow::features::switch_fl_features_into(stats, &mut scratch.row);
                if self.log_compress {
                    log_compress_vec(&mut scratch.row);
                }
                let MatchScratch { row, words, wl, .. } = scratch;
                pwl.predict(row, words, wl)
            }
            None => false,
        }
    }

    /// Runs one packet through the six-path pipeline against the given
    /// shard state. `seq` is the packet's global arrival index; a blue-path
    /// digest is tagged with it so per-shard digest streams can be merged
    /// back into arrival order deterministically.
    ///
    /// This is the scalar reference path; [`MatchEngine::process_rows`]
    /// is the columnar production path, parity-pinned to this one.
    pub(crate) fn process_one(
        &self,
        state: &mut ShardState,
        scratch: &mut MatchScratch,
        pkt: &Packet,
        seq: u64,
    ) -> ProcessOutcome {
        state.processed += 1;
        let ShardState { flow, blacklist, digests, paths, overload, .. } = state;
        let key = pkt.five.canonical();

        // Red path: blacklist match.
        if blacklist.contains(&key) {
            paths.blacklist += 1;
            counter!("switch.pipeline.path.blacklist").inc();
            return ProcessOutcome {
                verdict: PacketVerdict::Drop,
                path: PathTaken::Blacklist,
                mirrored: false,
            };
        }

        let pl = packet_level_features(pkt);
        match flow.observe(pkt, pkt.ts_ns) {
            InsertOutcome::Classified { label } => {
                paths.purple += 1;
                counter!("switch.pipeline.path.purple").inc();
                ProcessOutcome {
                    verdict: self.verdict_for(label),
                    path: PathTaken::Purple,
                    mirrored: false,
                }
            }
            InsertOutcome::Early { .. } => {
                paths.brown += 1;
                counter!("switch.pipeline.path.brown").inc();
                let malicious = self.pl_rules.predict(&pl, &mut scratch.words, &mut scratch.wl);
                ProcessOutcome {
                    verdict: self.verdict_for(malicious),
                    path: PathTaken::Brown,
                    mirrored: false,
                }
            }
            InsertOutcome::Ready { stats, timed_out: _ } => {
                paths.blue += 1;
                counter!("switch.pipeline.path.blue").inc();
                let mut fl = switch_fl_features(&stats);
                if self.log_compress {
                    iguard_flow::features::log_compress_vec(&mut fl);
                }
                // The installed whitelist is the merge of FL and PL rules
                // (§3.3.1): a flow must look benign to both to pass.
                let malicious = self.fl_rules().predict(&fl, &mut scratch.words, &mut scratch.wl)
                    || self.pl_rules.predict(&pl, &mut scratch.words, &mut scratch.wl);
                overload.push_digest(
                    digests,
                    SeqDigest { seq, digest: Digest::new(pkt.five, malicious) },
                    &self.overload,
                );
                // Green path: the loopback copy writes the flow label.
                paths.green_loopback += 1;
                counter!("switch.pipeline.path.green_loopback").inc();
                flow.set_label(&pkt.five, malicious);
                ProcessOutcome {
                    verdict: self.verdict_for(malicious),
                    path: PathTaken::Blue,
                    mirrored: true,
                }
            }
            InsertOutcome::PhaseReady { stats, phase } => {
                counter!("switch.phase.boundary").inc();
                // Convict-only early look: the per-phase whitelist can
                // pull the blue verdict forward to this boundary, but a
                // benign-looking flow is *not* labelled — it escalates to
                // the next phase (or the final threshold) like a brown
                // early packet. No model installed for this phase ⇒
                // escalate unconditionally.
                let convicted = match self.phase_rules(phase) {
                    Some(wl) => {
                        let mut fl = switch_fl_features(&stats);
                        if self.log_compress {
                            iguard_flow::features::log_compress_vec(&mut fl);
                        }
                        wl.predict(&fl, &mut scratch.words, &mut scratch.wl)
                    }
                    None => false,
                };
                if convicted {
                    counter!("switch.phase.convicted").inc();
                    paths.blue += 1;
                    counter!("switch.pipeline.path.blue").inc();
                    overload.push_digest(
                        digests,
                        SeqDigest { seq, digest: Digest::at_phase(pkt.five, true, phase) },
                        &self.overload,
                    );
                    paths.green_loopback += 1;
                    counter!("switch.pipeline.path.green_loopback").inc();
                    flow.set_label(&pkt.five, true);
                    ProcessOutcome {
                        verdict: self.verdict_for(true),
                        path: PathTaken::Blue,
                        mirrored: true,
                    }
                } else {
                    counter!("switch.phase.escalated").inc();
                    paths.brown += 1;
                    counter!("switch.pipeline.path.brown").inc();
                    let malicious = self.pl_rules.predict(&pl, &mut scratch.words, &mut scratch.wl);
                    ProcessOutcome {
                        verdict: self.verdict_for(malicious),
                        path: PathTaken::Brown,
                        mirrored: false,
                    }
                }
            }
            InsertOutcome::Collision | InsertOutcome::ReplacedClassified { .. } => {
                paths.orange += 1;
                counter!("switch.pipeline.path.orange").inc();
                let malicious = self.pl_rules.predict(&pl, &mut scratch.words, &mut scratch.wl);
                ProcessOutcome {
                    verdict: self.verdict_for(malicious),
                    path: PathTaken::Orange,
                    mirrored: false,
                }
            }
        }
    }

    /// The columnar six-path walk: processes the batch rows listed in
    /// `rows` (indices into `batch`/`pkts`, in per-shard arrival order)
    /// against the shard states, appending one outcome per row to `out`
    /// in `rows` order (`out[k]` answers row `rows[k]`).
    ///
    /// The walk is split into phases per [`BATCH_CHUNK`]-row chunk:
    ///
    /// 1. **Stateful walk** — per row: blacklist probe on the
    ///    pre-canonicalised key column, flow-table observe, and path
    ///    dispatch. Purple/red resolve immediately. Blue resolves inline
    ///    (its verdict writes the flow label, which later packets of the
    ///    same flow in this very batch must see), reading FL features
    ///    into the scratch row and the PL row straight from the feature
    ///    columns. Brown/orange only record a *pending* entry — their PL
    ///    decision is stateless.
    /// 2. **Columnar resolve** — the pending rows' PL features are
    ///    gathered into compact columns and resolved with one batch index
    ///    probe, then written back into the outcome column branchlessly.
    ///
    /// Verdicts, digests, and every counter are byte-identical to running
    /// [`MatchEngine::process_one`] over the same rows in the same order:
    /// chunk boundaries only ever split the stateless deferred lookups.
    /// `state_of` maps a batch row to its index in `states`; `seq` of row
    /// `r` is `base_seq + r`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_rows(
        &self,
        states: &mut [ShardState],
        state_of: impl Fn(usize) -> usize,
        batch: &PacketBatch,
        pkts: &[Packet],
        rows: &[u32],
        base_seq: u64,
        scratch: &mut MatchScratch,
        out: &mut Vec<ProcessOutcome>,
    ) {
        out.reserve(rows.len());
        // How many rows ahead of the walk to warm flow-table slots. Far
        // enough to cover the load latency, small enough to stay in the
        // hashed prefix.
        const PREFETCH_AHEAD: usize = 12;
        for chunk in rows.chunks(BATCH_CHUNK) {
            scratch.pending.clear();
            // Pre-pass: hash every row's candidate slot pair in one tight
            // loop. The pair is a pure function of key and table config,
            // so this commutes with the stateful walk below; hashing
            // up front pipelines the hash/modulo chains across rows and
            // feeds the prefetcher.
            scratch.slot_idx.clear();
            scratch.slot_idx.extend(chunk.iter().map(|&r| {
                let i = r as usize;
                states[state_of(i)].flow.slot_index_pair(&batch.keys[i])
            }));
            // Per-chunk path tallies: the registry counters take one
            // atomic add per path per chunk instead of one per packet
            // (identical totals; `ShardState::paths` stays per-row).
            let (mut t_black, mut t_brown, mut t_blue, mut t_orange, mut t_purple) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for (c, &r) in chunk.iter().enumerate() {
                if let Some(&(p1, p2)) = scratch.slot_idx.get(c + PREFETCH_AHEAD) {
                    let j = chunk[c + PREFETCH_AHEAD] as usize;
                    states[state_of(j)].flow.prefetch_slots(p1, p2);
                }
                let i = r as usize;
                let pkt = &pkts[i];
                let (i1, i2) = scratch.slot_idx[c];
                let s = &mut states[state_of(i)];
                s.processed += 1;
                let key = batch.keys[i];

                // Red path: blacklist match on the precomputed canonical
                // key (the `is_empty` test skips the hash when no rules
                // are installed — the common case mid-batch).
                if !s.blacklist.is_empty() && s.blacklist.contains(&key) {
                    s.paths.blacklist += 1;
                    t_black += 1;
                    out.push(ProcessOutcome {
                        verdict: PacketVerdict::Drop,
                        path: PathTaken::Blacklist,
                        mirrored: false,
                    });
                    continue;
                }

                match s.flow.observe_prehashed(key, i1, i2, pkt, pkt.ts_ns, &mut scratch.tallies) {
                    InsertOutcome::Classified { label } => {
                        s.paths.purple += 1;
                        t_purple += 1;
                        out.push(ProcessOutcome {
                            verdict: self.verdict_for(label),
                            path: PathTaken::Purple,
                            mirrored: false,
                        });
                    }
                    InsertOutcome::Early { .. } => {
                        s.paths.brown += 1;
                        t_brown += 1;
                        scratch.pending.push((r, out.len() as u32));
                        out.push(ProcessOutcome {
                            verdict: PacketVerdict::Forward,
                            path: PathTaken::Brown,
                            mirrored: false,
                        });
                    }
                    InsertOutcome::Ready { stats, timed_out: _ } => {
                        s.paths.blue += 1;
                        t_blue += 1;
                        switch_fl_features_into(&stats, &mut scratch.row);
                        if self.log_compress {
                            log_compress_vec(&mut scratch.row);
                        }
                        let MatchScratch { words, row, wl, .. } = &mut *scratch;
                        // FL ∥ PL short-circuit exactly as the scalar path,
                        // so the whitelist counters stay identical.
                        let malicious = self.fl_rules().predict(row, words, wl)
                            || self.pl_rules.predict(&batch.pl_row(i), words, wl);
                        s.overload.push_digest(
                            &mut s.digests,
                            SeqDigest {
                                seq: base_seq + r as u64,
                                digest: Digest::new(pkt.five, malicious),
                            },
                            &self.overload,
                        );
                        s.paths.green_loopback += 1;
                        counter!("switch.pipeline.path.green_loopback").inc();
                        s.flow.set_label(&pkt.five, malicious);
                        out.push(ProcessOutcome {
                            verdict: self.verdict_for(malicious),
                            path: PathTaken::Blue,
                            mirrored: true,
                        });
                    }
                    InsertOutcome::PhaseReady { stats, phase } => {
                        counter!("switch.phase.boundary").inc();
                        // Resolved fully inline (not deferred to the
                        // pending pass): a conviction mutates shard state
                        // — label write + digest — which later rows of
                        // the same flow in this chunk must observe, and
                        // the escalation's PL probe runs here too so the
                        // probe order matches the scalar oracle exactly.
                        let convicted = match self.phase_rules(phase) {
                            Some(pwl) => {
                                switch_fl_features_into(&stats, &mut scratch.row);
                                if self.log_compress {
                                    log_compress_vec(&mut scratch.row);
                                }
                                let MatchScratch { words, row, wl, .. } = &mut *scratch;
                                pwl.predict(row, words, wl)
                            }
                            None => false,
                        };
                        if convicted {
                            counter!("switch.phase.convicted").inc();
                            s.paths.blue += 1;
                            t_blue += 1;
                            s.overload.push_digest(
                                &mut s.digests,
                                SeqDigest {
                                    seq: base_seq + r as u64,
                                    digest: Digest::at_phase(pkt.five, true, phase),
                                },
                                &self.overload,
                            );
                            s.paths.green_loopback += 1;
                            counter!("switch.pipeline.path.green_loopback").inc();
                            s.flow.set_label(&pkt.five, true);
                            out.push(ProcessOutcome {
                                verdict: self.verdict_for(true),
                                path: PathTaken::Blue,
                                mirrored: true,
                            });
                        } else {
                            counter!("switch.phase.escalated").inc();
                            s.paths.brown += 1;
                            t_brown += 1;
                            let MatchScratch { words, wl, .. } = &mut *scratch;
                            let malicious = self.pl_rules.predict(&batch.pl_row(i), words, wl);
                            out.push(ProcessOutcome {
                                verdict: self.verdict_for(malicious),
                                path: PathTaken::Brown,
                                mirrored: false,
                            });
                        }
                    }
                    InsertOutcome::Collision | InsertOutcome::ReplacedClassified { .. } => {
                        s.paths.orange += 1;
                        t_orange += 1;
                        scratch.pending.push((r, out.len() as u32));
                        out.push(ProcessOutcome {
                            verdict: PacketVerdict::Forward,
                            path: PathTaken::Orange,
                            mirrored: false,
                        });
                    }
                }
            }
            scratch.tallies.flush();
            let flush_path = |n: u64, c: &'static iguard_telemetry::Counter| {
                if n > 0 {
                    c.add(n);
                }
            };
            flush_path(t_black, counter!("switch.pipeline.path.blacklist"));
            flush_path(t_brown, counter!("switch.pipeline.path.brown"));
            flush_path(t_blue, counter!("switch.pipeline.path.blue"));
            flush_path(t_orange, counter!("switch.pipeline.path.orange"));
            flush_path(t_purple, counter!("switch.pipeline.path.purple"));
            self.resolve_pending(batch, scratch, out);
        }
    }

    /// Phase 2 of [`MatchEngine::process_rows`]: gathers the deferred
    /// brown/orange rows' PL features into compact columns, probes the PL
    /// whitelist once for the whole set, and patches the verdict column
    /// in place (branchless select — `Forward`/`Drop` indexed by the
    /// decision bit).
    fn resolve_pending(
        &self,
        batch: &PacketBatch,
        scratch: &mut MatchScratch,
        out: &mut [ProcessOutcome],
    ) {
        let MatchScratch { pending, pend_cols, bscratch, hits, wl, .. } = scratch;
        let n = pending.len();
        if n == 0 {
            return;
        }
        // Pending rows are pushed in strictly increasing row order, so a
        // first/last span check detects the common brown-dominated case
        // where the whole chunk is pending: probe the batch's own column
        // slices directly instead of gather-copying them.
        let first = pending[0].0 as usize;
        if pending[n - 1].0 as usize - first == n - 1 {
            let views: [&[f32]; PL_DIM] =
                std::array::from_fn(|d| &batch.pl.column(d)[first..first + n]);
            self.pl_rules.predict_batch_views(&views, bscratch, hits, wl);
        } else {
            pend_cols.reset(PL_DIM, n);
            for d in 0..PL_DIM {
                let src = batch.pl.column(d);
                for (dst, &(r, _)) in pend_cols.column_mut(d).iter_mut().zip(pending.iter()) {
                    *dst = src[r as usize];
                }
            }
            self.pl_rules.predict_batch(pend_cols, bscratch, hits, wl);
        }
        let verdicts = [PacketVerdict::Forward, PacketVerdict::Drop];
        for (&(_, pos), hit) in pending.iter().zip(hits.iter()) {
            out[pos as usize].verdict = verdicts[(hit.is_none() && self.drop_malicious) as usize];
        }
    }

    /// Columnar FL classification of dataset rows `start..end` (one
    /// chunk): transposes the rows into the scratch feature columns,
    /// applies the configured log-compress map per column, probes the FL
    /// index once for the whole chunk, and appends one verdict per row
    /// (`true` = malicious) — identical to per-row
    /// [`MatchEngine::classify_fl`] calls, counters included.
    pub(crate) fn classify_fl_batch(
        &self,
        rows: &Dataset,
        start: usize,
        end: usize,
        scratch: &mut MatchScratch,
        out: &mut Vec<bool>,
    ) {
        scratch.fl_cols.reset(SWITCH_FL_DIM, end - start);
        for d in 0..SWITCH_FL_DIM {
            let col = scratch.fl_cols.column_mut(d);
            for (dst, i) in col.iter_mut().zip(start..end) {
                *dst = rows.row(i)[d];
            }
            if self.log_compress {
                for v in col.iter_mut() {
                    *v = log_compress(*v);
                }
            }
        }
        let MatchScratch { fl_cols, bscratch, hits, wl, .. } = scratch;
        self.fl_rules().predict_batch(fl_cols, bscratch, hits, wl);
        out.extend(hits.iter().map(|h| h.is_none()));
    }

    pub(crate) fn verdict_for(&self, malicious: bool) -> PacketVerdict {
        if malicious && self.drop_malicious {
            PacketVerdict::Drop
        } else {
            PacketVerdict::Forward
        }
    }
}

/// The emulated data plane: the single-threaded reference backend. The
/// batched [`DataPlane`] entry points run the columnar hot path
/// ([`MatchEngine::process_rows`]); [`Pipeline::process`] remains as the
/// scalar per-packet path — kept byte-compatible so it can serve as the
/// parity oracle (see [`ScalarPipeline`]).
pub struct Pipeline {
    cfg: PipelineConfig,
    engine: MatchEngine,
    /// The one (full-size) shard of this serial backend.
    state: ShardState,
    scratch: MatchScratch,
    /// Reusable columnar ingest buffers of the batched path.
    batch: PacketBatch,
    rows_idx: Vec<u32>,
    /// Monotonic counter for resync digest sequence numbers.
    resync_seq: u64,
}

impl Pipeline {
    pub fn new(cfg: impl Into<PipelineConfig>, fl_rules: RuleSet, pl_rules: RuleSet) -> Self {
        let cfg = cfg.into();
        Self {
            state: ShardState::new(cfg.flow_table),
            engine: MatchEngine::new(&cfg, fl_rules, pl_rules),
            cfg,
            scratch: MatchScratch::default(),
            batch: PacketBatch::default(),
            rows_idx: Vec::new(),
            resync_seq: 0,
        }
    }

    /// Processes one packet through the six-path pipeline (scalar path).
    pub fn process(&mut self, pkt: &Packet) -> ProcessOutcome {
        let seq = self.state.processed;
        self.engine.process_one(&mut self.state, &mut self.scratch, pkt, seq)
    }

    /// Takes the digests accumulated since the last drain.
    pub fn drain_digests(&mut self) -> Vec<Digest> {
        self.state.digests.drain(..).map(|sd| sd.digest).collect()
    }

    /// Applies a controller command.
    pub fn apply(&mut self, action: ControlAction) {
        match action {
            ControlAction::InstallBlacklist(five) => {
                self.state.blacklist.insert(five.canonical());
            }
            ControlAction::RemoveBlacklist(five) => {
                self.state.blacklist.remove(&five.canonical());
            }
            ControlAction::ClearFlow(five) => {
                self.state.flow.clear(&five);
            }
        }
    }

    pub fn blacklist_len(&self) -> usize {
        self.state.blacklist.len()
    }

    /// The installed blacklist, in canonical sorted order (for equality
    /// checks across backends).
    pub fn blacklist_contents(&self) -> Vec<FiveTuple> {
        let mut v: Vec<FiveTuple> = self.state.blacklist.iter().copied().collect();
        v.sort_unstable();
        v
    }

    pub fn packets_processed(&self) -> u64 {
        self.state.processed
    }

    /// Per-path packet counters.
    pub fn paths(&self) -> PathCounters {
        self.state.paths
    }

    pub fn flow_table(&self) -> &FlowShard {
        &self.state.flow
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Applies a versioned whitelist transaction (hitless swap; see
    /// [`crate::ruleset`] and [`MatchEngine::apply_ruleset`]).
    pub fn apply_ruleset(&mut self, txn: &RulesetTxn) -> Result<(), SwitchError> {
        self.engine.apply_ruleset(txn)
    }

    /// Installs one whitelist per intermediate phase boundary of the flow
    /// table's [`iguard_flow::table::PhaseSchedule`] (hitless epoch flip;
    /// all phases swap together). An empty slice disables phase
    /// evaluation — every boundary look escalates.
    pub fn set_phase_rulesets(&mut self, rulesets: &[RuleSet]) {
        self.engine.set_phase_rulesets(rulesets);
    }

    /// Number of per-phase whitelists installed in the live epoch.
    pub fn phase_count(&self) -> usize {
        self.engine.phase_count()
    }

    /// Version of the installed whitelist ruleset (0 until the first
    /// transaction).
    pub fn ruleset_version(&self) -> u64 {
        self.engine.ruleset_version()
    }

    /// Lifecycle accounting of the ruleset transactions seen so far.
    pub fn ruleset_counters(&self) -> RulesetCounters {
        self.engine.ruleset_counters()
    }

    /// The installed TCAM image of the live ruleset epoch, in canonical
    /// `(priority, fields)` order (empty until the first transaction).
    pub fn ruleset_table(&self) -> &RangeTable {
        self.engine.ruleset_table()
    }

    /// Compiled first-match index over [`Self::ruleset_table`], swapped in
    /// the same epoch flip as the table itself.
    pub fn ruleset_index(&self) -> &RangeIndex {
        self.engine.ruleset_index()
    }
}

impl DataPlane for Pipeline {
    fn process_batch(&mut self, pkts: &[Packet], out: &mut Vec<ProcessOutcome>) {
        out.clear();
        if pkts.is_empty() {
            return;
        }
        record_batch_telemetry(pkts.len());
        let Self { cfg, engine, state, scratch, batch, rows_idx, .. } = self;
        batch.fill(pkts);
        rows_idx.clear();
        rows_idx.extend(0..pkts.len() as u32);
        let base_seq = state.processed;
        // Rows are walked in arrival order, so `process_rows` writes the
        // outcome column directly — no per-row tag or copy pass.
        engine.process_rows(
            std::slice::from_mut(state),
            |_| 0,
            batch,
            pkts,
            rows_idx,
            base_seq,
            scratch,
            out,
        );
        update_overload(state, &cfg.overload);
    }

    fn drain_digests_into(&mut self, out: &mut Vec<Digest>) {
        out.extend(self.state.digests.drain(..).map(|sd| sd.digest));
    }

    fn drain_seq_digests_into(&mut self, out: &mut Vec<SeqDigest>) {
        out.append(&mut self.state.digests);
    }

    fn apply(&mut self, action: ControlAction) {
        Pipeline::apply(self, action);
    }

    fn apply_ruleset(&mut self, txn: &RulesetTxn) -> Result<(), SwitchError> {
        Pipeline::apply_ruleset(self, txn)
    }

    fn ruleset_version(&self) -> u64 {
        Pipeline::ruleset_version(self)
    }

    fn ruleset_counters(&self) -> RulesetCounters {
        Pipeline::ruleset_counters(self)
    }

    fn blacklist_contents(&self) -> Vec<iguard_flow::five_tuple::FiveTuple> {
        Pipeline::blacklist_contents(self)
    }

    fn resync_labeled_into(&mut self, out: &mut Vec<SeqDigest>) {
        let mut flows = Vec::new();
        self.state.flow.labeled_flows_into(&mut flows);
        for (five, malicious) in flows {
            out.push(SeqDigest {
                seq: RESYNC_SEQ_BASE + self.resync_seq,
                digest: Digest::new(five, malicious),
            });
            self.resync_seq += 1;
        }
    }

    fn counters(&self) -> PathCounters {
        self.state.paths
    }

    fn whitelist_counters(&self) -> WhitelistCounters {
        self.scratch.wl
    }

    fn classify_batch(&mut self, rows: &Dataset, out: &mut Vec<bool>) {
        out.clear();
        if rows.rows() == 0 {
            return;
        }
        record_batch_telemetry(rows.rows());
        out.reserve(rows.rows());
        for start in (0..rows.rows()).step_by(BATCH_CHUNK) {
            let end = (start + BATCH_CHUNK).min(rows.rows());
            self.engine.classify_fl_batch(rows, start, end, &mut self.scratch, out);
        }
    }

    fn flow_table_stats(&self) -> FlowTableStats {
        self.state.flow.stats()
    }

    fn overload_stats(&self) -> crate::data_plane::OverloadStats {
        self.state.overload_view()
    }

    fn blacklist_len(&self) -> usize {
        Pipeline::blacklist_len(self)
    }

    fn packets_processed(&self) -> u64 {
        self.state.processed
    }
}

/// Batch-path telemetry, shared by both backends: row-count distribution
/// and the number of [`BATCH_CHUNK`] chunks the batch cuts into. Recorded
/// once per top-level batch call — never per worker or per shard group —
/// so the totals are invariant under worker and shard count.
pub(crate) fn record_batch_telemetry(rows: usize) {
    histogram!("switch.batch.rows").record(rows as u64);
    counter!("switch.batch.chunks").add(rows.div_ceil(BATCH_CHUNK) as u64);
}

/// The scalar per-packet backend behind the [`DataPlane`] interface:
/// every batch call loops [`Pipeline::process`] /
/// [`MatchEngine::classify_fl`] one row at a time, exactly as the data
/// plane worked before the columnar refactor. It exists as the measured
/// baseline and parity oracle for the structure-of-arrays path — same
/// rules, same state, no batching.
pub struct ScalarPipeline(Pipeline);

impl ScalarPipeline {
    pub fn new(cfg: impl Into<PipelineConfig>, fl_rules: RuleSet, pl_rules: RuleSet) -> Self {
        Self(Pipeline::new(cfg, fl_rules, pl_rules))
    }

    /// The wrapped serial pipeline.
    pub fn inner(&self) -> &Pipeline {
        &self.0
    }

    /// Installs per-phase whitelists on the wrapped pipeline (see
    /// [`Pipeline::set_phase_rulesets`]).
    pub fn set_phase_rulesets(&mut self, rulesets: &[RuleSet]) {
        self.0.set_phase_rulesets(rulesets);
    }
}

impl DataPlane for ScalarPipeline {
    fn process_batch(&mut self, pkts: &[Packet], out: &mut Vec<ProcessOutcome>) {
        out.clear();
        out.reserve(pkts.len());
        for pkt in pkts {
            out.push(self.0.process(pkt));
        }
        // One overload tick per batch, same cadence as the columnar
        // backend, so the two stay parity-pinned under pressure too.
        let overload = self.0.cfg.overload;
        update_overload(&mut self.0.state, &overload);
    }

    fn drain_digests_into(&mut self, out: &mut Vec<Digest>) {
        self.0.drain_digests_into(out);
    }

    fn drain_seq_digests_into(&mut self, out: &mut Vec<SeqDigest>) {
        self.0.drain_seq_digests_into(out);
    }

    fn apply(&mut self, action: ControlAction) {
        self.0.apply(action);
    }

    fn apply_ruleset(&mut self, txn: &RulesetTxn) -> Result<(), SwitchError> {
        self.0.apply_ruleset(txn)
    }

    fn ruleset_version(&self) -> u64 {
        self.0.ruleset_version()
    }

    fn ruleset_counters(&self) -> RulesetCounters {
        self.0.ruleset_counters()
    }

    fn blacklist_contents(&self) -> Vec<FiveTuple> {
        self.0.blacklist_contents()
    }

    fn resync_labeled_into(&mut self, out: &mut Vec<SeqDigest>) {
        self.0.resync_labeled_into(out);
    }

    fn counters(&self) -> PathCounters {
        self.0.state.paths
    }

    fn whitelist_counters(&self) -> WhitelistCounters {
        self.0.scratch.wl
    }

    fn classify_batch(&mut self, rows: &Dataset, out: &mut Vec<bool>) {
        out.clear();
        out.reserve(rows.rows());
        for i in 0..rows.rows() {
            out.push(self.0.engine.classify_fl(rows.row(i), &mut self.0.scratch));
        }
    }

    fn flow_table_stats(&self) -> FlowTableStats {
        self.0.flow_table_stats()
    }

    fn overload_stats(&self) -> crate::data_plane::OverloadStats {
        self.0.state.overload_view()
    }

    fn blacklist_len(&self) -> usize {
        self.0.blacklist_len()
    }

    fn packets_processed(&self) -> u64 {
        self.0.packets_processed()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use iguard_core::rules::{Hypercube, RuleSet};

    /// A whitelist that accepts everything (one unbounded benign box).
    pub fn accept_all(dim: usize) -> RuleSet {
        RuleSet {
            bounds: vec![(0.0, 1.0); dim],
            whitelist: vec![Hypercube {
                lo: vec![f32::NEG_INFINITY; dim],
                hi: vec![f32::INFINITY; dim],
            }],
            total_regions: 1,
        }
    }

    /// A whitelist that rejects everything (empty).
    pub fn reject_all(dim: usize) -> RuleSet {
        RuleSet { bounds: vec![(0.0, 1.0); dim], whitelist: vec![], total_regions: 1 }
    }

    /// FL whitelist benign iff mean packet size (feature 2) < `cut`.
    pub fn fl_mean_size_below(cut: f32) -> RuleSet {
        let mut lo = vec![f32::NEG_INFINITY; 13];
        let mut hi = vec![f32::INFINITY; 13];
        lo[2] = f32::NEG_INFINITY;
        hi[2] = cut;
        RuleSet {
            bounds: vec![(0.0, 2000.0); 13],
            whitelist: vec![Hypercube { lo, hi }],
            total_regions: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_flow::five_tuple::PROTO_TCP;
    use iguard_flow::packet::TcpFlags;
    use iguard_flow::table::PhaseSchedule;
    use testutil::*;

    fn pkt(flow: u16, ts_ms: u64, len: u16) -> Packet {
        Packet {
            ts_ns: ts_ms * 1_000_000,
            five: FiveTuple::new(0x0A000001, 0xC0A80101, 30_000 + flow, 80, PROTO_TCP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        }
    }

    fn cfg(n: u64) -> PipelineConfig {
        PipelineConfig {
            flow_table: FlowTableConfig { pkt_threshold: n, ..Default::default() },
            drop_malicious: true,
            log_compress: false,
            overload: OverloadConfig::default(),
        }
    }

    #[test]
    fn benign_flow_walks_brown_then_blue_then_purple() {
        let mut p = Pipeline::new(cfg(3), accept_all(13), accept_all(4));
        let o1 = p.process(&pkt(1, 0, 100));
        assert_eq!(o1.path, PathTaken::Brown);
        assert_eq!(o1.verdict, PacketVerdict::Forward);
        let o2 = p.process(&pkt(1, 1, 100));
        assert_eq!(o2.path, PathTaken::Brown);
        let o3 = p.process(&pkt(1, 2, 100));
        assert_eq!(o3.path, PathTaken::Blue);
        assert!(o3.mirrored);
        assert_eq!(o3.verdict, PacketVerdict::Forward);
        // After classification: purple.
        let o4 = p.process(&pkt(1, 3, 100));
        assert_eq!(o4.path, PathTaken::Purple);
        assert_eq!(p.paths().green_loopback, 1);
        assert_eq!(p.drain_digests(), vec![Digest::new(pkt(1, 0, 0).five, false)]);
    }

    #[test]
    fn malicious_flow_dropped_at_blue_and_after() {
        // FL whitelist only accepts mean size < 200: large-packet flow fails.
        let mut p = Pipeline::new(cfg(2), fl_mean_size_below(200.0), accept_all(4));
        let _ = p.process(&pkt(2, 0, 1000));
        let o2 = p.process(&pkt(2, 1, 1000));
        assert_eq!(o2.path, PathTaken::Blue);
        assert_eq!(o2.verdict, PacketVerdict::Drop);
        let o3 = p.process(&pkt(2, 2, 1000));
        assert_eq!(o3.path, PathTaken::Purple);
        assert_eq!(o3.verdict, PacketVerdict::Drop);
        let d = p.drain_digests();
        assert!(d[0].malicious);
    }

    #[test]
    fn blacklist_short_circuits() {
        let mut p = Pipeline::new(cfg(3), accept_all(13), accept_all(4));
        p.apply(ControlAction::InstallBlacklist(pkt(3, 0, 0).five));
        let o = p.process(&pkt(3, 0, 100));
        assert_eq!(o.path, PathTaken::Blacklist);
        assert_eq!(o.verdict, PacketVerdict::Drop);
        // Reverse direction also blocked (canonical key).
        let mut rev = pkt(3, 1, 100);
        rev.five = rev.five.reversed();
        assert_eq!(p.process(&rev).path, PathTaken::Blacklist);
    }

    #[test]
    fn pl_rules_drop_early_packets() {
        let mut p = Pipeline::new(cfg(5), accept_all(13), reject_all(4));
        let o = p.process(&pkt(4, 0, 100));
        assert_eq!(o.path, PathTaken::Brown);
        assert_eq!(o.verdict, PacketVerdict::Drop);
    }

    #[test]
    fn collision_takes_orange_path() {
        let mut c = cfg(100);
        c.flow_table.slots_per_table = 1;
        let mut p = Pipeline::new(c, accept_all(13), accept_all(4));
        let _ = p.process(&pkt(1, 0, 100));
        let _ = p.process(&pkt(2, 0, 100));
        let o = p.process(&pkt(3, 0, 100));
        assert_eq!(o.path, PathTaken::Orange);
        assert_eq!(o.verdict, PacketVerdict::Forward);
        assert_eq!(p.paths().orange, 1);
    }

    #[test]
    fn controller_actions_round_trip() {
        let mut p = Pipeline::new(cfg(2), accept_all(13), accept_all(4));
        let five = pkt(9, 0, 0).five;
        p.apply(ControlAction::InstallBlacklist(five));
        assert_eq!(p.blacklist_len(), 1);
        p.apply(ControlAction::RemoveBlacklist(five));
        assert_eq!(p.blacklist_len(), 0);
        // ClearFlow releases storage.
        let _ = p.process(&pkt(9, 0, 100));
        assert_eq!(p.flow_table().occupancy(), 1);
        p.apply(ControlAction::ClearFlow(five));
        assert_eq!(p.flow_table().occupancy(), 0);
    }

    #[test]
    fn quarantine_mode_forwards_detected_packets() {
        let mut c = cfg(2);
        c.drop_malicious = false;
        let mut p = Pipeline::new(c, fl_mean_size_below(10.0), accept_all(4));
        let _ = p.process(&pkt(5, 0, 500));
        let o = p.process(&pkt(5, 1, 500));
        assert_eq!(o.verdict, PacketVerdict::Forward); // detected but forwarded
        assert!(p.drain_digests()[0].malicious); // still reported
    }

    #[test]
    fn path_counters_sum_to_offered() {
        let mut p = Pipeline::new(cfg(2), accept_all(13), accept_all(4));
        for f in 0..10u16 {
            for i in 0..4u64 {
                let _ = p.process(&pkt(f, i, 100));
            }
        }
        assert_eq!(p.paths().total_offered(), 40);
        assert_eq!(p.packets_processed(), 40);
    }

    /// The overload canon config with an intermediate phase boundary.
    fn cfg_phases(n: u64, boundaries: &[u64]) -> PipelineConfig {
        let mut c = cfg(n);
        c.flow_table.phases = PhaseSchedule::new(boundaries);
        c
    }

    /// Off-by-one pin for the blue transition (exact-`pkt_threshold`
    /// boundary): the n-th packet of a flow — count == threshold, not
    /// threshold+1 — must take blue, and the scalar and columnar walks
    /// must agree packet-for-packet.
    #[test]
    fn blue_fires_at_exactly_the_threshold_packet_scalar_and_columnar() {
        let n = 4u64;
        let pkts: Vec<Packet> = (0..6).map(|i| pkt(1, i, 100)).collect();

        // Scalar oracle: process_one via Pipeline::process.
        let mut scalar = Pipeline::new(cfg(n), accept_all(13), accept_all(4));
        let scalar_paths: Vec<PathTaken> = pkts.iter().map(|p| scalar.process(p).path).collect();
        assert_eq!(
            scalar_paths,
            vec![
                PathTaken::Brown,  // 1st
                PathTaken::Brown,  // 2nd
                PathTaken::Brown,  // 3rd: count 3 < n, still early
                PathTaken::Blue,   // 4th: count == n exactly
                PathTaken::Purple, // classified thereafter
                PathTaken::Purple,
            ],
            "blue must fire at exactly the n-th packet"
        );

        // Columnar walk (process_rows) must place the transition on the
        // same packet.
        let mut columnar = Pipeline::new(cfg(n), accept_all(13), accept_all(4));
        let mut out = Vec::new();
        columnar.process_batch(&pkts, &mut out);
        let col_paths: Vec<PathTaken> = out.iter().map(|o| o.path).collect();
        assert_eq!(col_paths, scalar_paths, "columnar boundary diverged from scalar");
        assert_eq!(columnar.drain_digests(), scalar.drain_digests());
    }

    #[test]
    fn phase_boundary_convicts_confident_malicious_early() {
        // Threshold 4, boundary at 2: a large-packet flow fails the phase
        // whitelist on its 2nd packet and is convicted two packets early.
        let mut p = Pipeline::new(cfg_phases(4, &[2]), accept_all(13), accept_all(4));
        p.set_phase_rulesets(&[fl_mean_size_below(200.0)]);
        assert_eq!(p.phase_count(), 1);
        assert_eq!(p.process(&pkt(1, 0, 1000)).path, PathTaken::Brown);
        let o2 = p.process(&pkt(1, 1, 1000));
        assert_eq!(o2.path, PathTaken::Blue);
        assert_eq!(o2.verdict, PacketVerdict::Drop);
        assert!(o2.mirrored);
        // Classified from here on — the label write happened at the
        // boundary.
        let o3 = p.process(&pkt(1, 2, 1000));
        assert_eq!(o3.path, PathTaken::Purple);
        assert_eq!(o3.verdict, PacketVerdict::Drop);
        let d = p.drain_digests();
        assert_eq!(d.len(), 1);
        assert!(d[0].malicious);
        assert_eq!(d[0].phase, 0, "digest must carry the deciding phase");
    }

    #[test]
    fn phase_boundary_escalates_uncertain_flows_to_the_final_threshold() {
        // Small packets pass the phase whitelist: no early verdict, no
        // label write — the flow escalates and keeps single-shot
        // semantics at the threshold.
        let mut p = Pipeline::new(cfg_phases(4, &[2]), accept_all(13), accept_all(4));
        p.set_phase_rulesets(&[fl_mean_size_below(200.0)]);
        assert_eq!(p.process(&pkt(2, 0, 100)).path, PathTaken::Brown);
        let o2 = p.process(&pkt(2, 1, 100));
        assert_eq!(o2.path, PathTaken::Brown, "escalation rides the brown path");
        assert!(!o2.mirrored);
        assert_eq!(p.process(&pkt(2, 2, 100)).path, PathTaken::Brown);
        let o4 = p.process(&pkt(2, 3, 100));
        assert_eq!(o4.path, PathTaken::Blue);
        let d = p.drain_digests();
        assert_eq!(d.len(), 1, "escalated flows digest once, at the threshold");
        assert_eq!(d[0].phase, FINAL_PHASE);
    }

    #[test]
    fn phase_schedule_without_rulesets_keeps_single_shot_semantics() {
        // A configured schedule with no installed phase whitelists must
        // behave exactly like today's pipeline: every boundary escalates.
        let pkts: Vec<Packet> = (0..5).map(|i| pkt(3, i, 1000)).collect();
        let mut plain = Pipeline::new(cfg(4), accept_all(13), accept_all(4));
        let mut phased = Pipeline::new(cfg_phases(4, &[2, 3]), accept_all(13), accept_all(4));
        for p in &pkts {
            let a = plain.process(p);
            let b = phased.process(p);
            assert_eq!((a.verdict, a.path, a.mirrored), (b.verdict, b.path, b.mirrored));
        }
        assert_eq!(plain.drain_digests(), phased.drain_digests());
    }

    #[test]
    fn phase_walk_parity_scalar_vs_columnar() {
        // Mixed flows — convicted at the boundary, escalated to blue, and
        // short-lived — through both walks, interleaved in one batch.
        let phase_rules = [fl_mean_size_below(200.0)];
        let mut pkts = Vec::new();
        for i in 0..5u64 {
            pkts.push(pkt(1, i * 3, 1000)); // convicted at boundary
            pkts.push(pkt(2, i * 3 + 1, 100)); // escalates, blue at 4
            if i < 1 {
                pkts.push(pkt(3, i * 3 + 2, 100)); // stays early
            }
        }
        let mut scalar = ScalarPipeline::new(cfg_phases(4, &[2]), accept_all(13), accept_all(4));
        scalar.set_phase_rulesets(&phase_rules);
        let mut columnar = Pipeline::new(cfg_phases(4, &[2]), accept_all(13), accept_all(4));
        columnar.set_phase_rulesets(&phase_rules);
        let (mut so, mut co) = (Vec::new(), Vec::new());
        scalar.process_batch(&pkts, &mut so);
        columnar.process_batch(&pkts, &mut co);
        assert_eq!(so, co, "phase walks diverged between scalar and columnar");
        let (mut sd_, mut cd) = (Vec::new(), Vec::new());
        scalar.drain_seq_digests_into(&mut sd_);
        columnar.drain_seq_digests_into(&mut cd);
        assert_eq!(sd_, cd);
        assert!(sd_.iter().any(|d| d.digest.phase == 0), "expected a phase-0 conviction");
    }

    fn sd(seq: u64, malicious: bool) -> SeqDigest {
        SeqDigest { seq, digest: Digest::new(pkt(seq as u16, 0, 0).five, malicious) }
    }

    #[test]
    fn push_digest_sheds_benign_first_and_keeps_earliest_malicious_evidence() {
        let cfg = OverloadConfig::default().with_digest_buffer_cap(2);
        let mut o = OverloadState::default();
        let mut buf = Vec::new();
        o.push_digest(&mut buf, sd(0, false), &cfg);
        o.push_digest(&mut buf, sd(1, true), &cfg);
        assert_eq!(buf.len(), 2);
        // At the cap: an incoming benign digest is dropped...
        o.push_digest(&mut buf, sd(2, false), &cfg);
        assert_eq!((buf.len(), o.shed_benign), (2, 1));
        // ...an incoming malicious one displaces the oldest benign...
        o.push_digest(&mut buf, sd(3, true), &cfg);
        assert_eq!(o.shed_benign, 2);
        assert_eq!(buf.iter().map(|d| d.seq).collect::<Vec<_>>(), vec![1, 3]);
        assert!(buf.iter().all(|d| d.digest.malicious));
        // ...and an all-malicious cap-full buffer keeps its earliest
        // evidence, dropping the newcomer.
        o.push_digest(&mut buf, sd(4, true), &cfg);
        assert_eq!((o.shed_malicious, buf[0].seq), (1, 1));
        // Degraded mode sheds benign at the source even with buffer room.
        buf.clear();
        o.degraded = true;
        o.push_digest(&mut buf, sd(5, false), &cfg);
        o.push_digest(&mut buf, sd(6, true), &cfg);
        assert_eq!((buf.len(), o.shed_benign), (1, 3));
        assert_eq!(o.buffered_hwm, 2);
    }

    /// 512 distinct single-packet flows against a 4-slot table: almost
    /// every observation collides, so the windowed churn signal pegs high.
    fn storm_batch(base_ms: u64) -> Vec<Packet> {
        (0..512u16).map(|f| pkt(f, base_ms + f as u64, 100)).collect()
    }

    #[test]
    fn degraded_mode_enters_under_churn_and_exits_after_calm_batches() {
        let c = PipelineConfig::from(FlowTableConfig {
            slots_per_table: 2,
            pkt_threshold: 100,
            ..Default::default()
        });
        let mut p = Pipeline::new(c, accept_all(13), accept_all(4));
        let mut out = Vec::new();
        p.process_batch(&storm_batch(0), &mut out);
        let os = p.overload_stats();
        assert_eq!(os.degraded_shards, 1, "storm churn must trip degraded mode");
        assert_eq!(os.degraded_entries, 1);
        assert!(os.pressure.pressure_milli >= 750, "pressure {}", os.pressure.pressure_milli);
        assert!(os.pressure.collision_window_hwm > 0);

        // Calm traffic: only resident flows, enough packets per batch to
        // roll the pressure window. One calm batch is not enough...
        let calm = |base_ms: u64| -> Vec<Packet> {
            (0..256u64).map(|i| pkt(0, base_ms + i, 100)).collect()
        };
        p.process_batch(&calm(600), &mut out);
        assert_eq!(p.overload_stats().degraded_shards, 1, "hysteresis holds after one calm batch");
        // ...but `degrade_calm_batches` consecutive ones clear it.
        for b in 1..4u64 {
            p.process_batch(&calm(600 + 300 * b), &mut out);
        }
        let os = p.overload_stats();
        assert_eq!(os.degraded_shards, 0, "calm streak must exit degraded mode");
        assert_eq!(os.degraded_exits, 1);
        assert!(os.degraded_batches >= 4, "residency {} batches", os.degraded_batches);
        assert!(os.pressure.churn_milli_hwm >= 750);
    }

    #[test]
    fn degraded_shard_sheds_benign_digests_but_keeps_verdicts() {
        // FL: benign iff mean packet size < 200. Flow 0 stays small
        // (benign), flow 1 large (malicious); threshold 2 → their second
        // packets take the blue path and emit digests while degraded.
        let c = PipelineConfig::from(FlowTableConfig {
            slots_per_table: 2,
            pkt_threshold: 2,
            ..Default::default()
        });
        let mut p = Pipeline::new(c, fl_mean_size_below(200.0), accept_all(4));
        let mut out = Vec::new();
        let storm: Vec<Packet> =
            (0..512u16).map(|f| pkt(f, f as u64, if f == 1 { 1000 } else { 100 })).collect();
        p.process_batch(&storm, &mut out);
        assert_eq!(p.overload_stats().degraded_shards, 1);
        p.drain_digests(); // discard pre-storm digests

        p.process_batch(&[pkt(0, 600, 100), pkt(1, 601, 1000)], &mut out);
        assert_eq!(out[0].path, PathTaken::Blue);
        assert_eq!(out[1].path, PathTaken::Blue);
        let d = p.drain_digests();
        assert_eq!(d.len(), 1, "benign digest shed at the source");
        assert!(d[0].malicious);
        assert_eq!(d[0].five, pkt(1, 0, 0).five.canonical());
        assert!(p.overload_stats().shed_benign >= 1);
        // The shed flow kept its label: later packets still ride purple
        // with the same verdict — only ClearFlow housekeeping is deferred.
        p.process_batch(&[pkt(0, 602, 100)], &mut out);
        assert_eq!(out[0].path, PathTaken::Purple);
        assert_eq!(out[0].verdict, PacketVerdict::Forward);
    }
}
