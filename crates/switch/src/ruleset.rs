//! The rule-diff engine and the transactional ruleset lifecycle.
//!
//! The paper compiles the whitelist once and installs it forever; under
//! drift the controller retrains and must *replace* the installed ruleset
//! on a live switch. Reinstalling the full table is unbounded rule churn
//! (every entry rewritten) and opens a classification gap while the TCAM
//! is half-programmed. This module bounds both:
//!
//! * [`RulesetDiff::between`] computes the **minimal install/remove
//!   delta** between two compiled [`RangeTable`]s. Entries are keyed by
//!   their canonical content `(priority, fields)` — an entry present in
//!   both tables is never churned, so the delta size is
//!   `|old| + |new| − 2·|old ∩ new|`, the multiset-minimal edit.
//! * [`RulesetTxn`] packages a delta with a monotonically increasing
//!   version and the retrained float whitelist it was compiled from. The
//!   data plane applies it atomically (see `MatchEngine::apply_ruleset`
//!   in [`crate::pipeline`]): every packet is classified by exactly one
//!   complete ruleset — the old one up to the swap, the new one after —
//!   and zero packets ever see a partial table.
//!
//! ## Canonical order
//!
//! Diffing and application keep entries sorted by `(priority, fields)`.
//! First-match semantics survive canonicalisation: [`RangeTable::lookup`]
//! resolves ties by `(priority, position)`, so reordering equal-priority
//! entries can only change *which* equal-priority entry is reported —
//! never whether a key matches, nor the winning priority. The pipeline
//! consumes only the match/no-match bit, so verdicts are invariant.
//!
//! ## Versioning rules
//!
//! Versions order transactions, not tables. A data plane at version `v`
//! accepts exactly `v + 1` (each txn is a delta against its
//! predecessor); re-delivery of any version `≤ v` is an idempotent no-op
//! (counted in `switch.ruleset.replayed`) so retries over a duplicating
//! channel are safe; a version `> v + 1` is rejected with
//! [`SwitchError::StaleRuleset`] — the plane's base table is stale for
//! that diff and applying it would corrupt the ruleset.

use std::cmp::Ordering;

use iguard_core::error::SwitchError;
use iguard_core::rules::RuleSet;

use crate::tcam::{RangeEntry, RangeTable};

/// Total content order on entries: priority first (the match-relevant
/// part), then the field ranges as a tie-break so equal-priority entries
/// have a deterministic position.
fn entry_cmp(a: &RangeEntry, b: &RangeEntry) -> Ordering {
    (a.priority, &a.fields).cmp(&(b.priority, &b.fields))
}

/// The entries of `table` in canonical `(priority, fields)` order — the
/// normal form diffing and application operate on.
pub fn canonical_entries(table: &RangeTable) -> Vec<RangeEntry> {
    let mut v = table.entries().to_vec();
    v.sort_by(entry_cmp);
    v
}

/// The minimal install/remove delta between two compiled tables.
///
/// `removes` come out in canonical old-table order, `installs` in
/// canonical new-table order — both deterministic, so two controllers
/// diffing the same pair of tables emit byte-identical transactions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RulesetDiff {
    pub installs: Vec<RangeEntry>,
    pub removes: Vec<RangeEntry>,
}

impl RulesetDiff {
    /// Multiset-minimal delta turning `old` into `new`: a merge walk over
    /// the two canonical entry lists. Entries equal in content (priority
    /// and every field range) are untouched.
    pub fn between(old: &RangeTable, new: &RangeTable) -> Self {
        let old_c = canonical_entries(old);
        let new_c = canonical_entries(new);
        let mut installs = Vec::new();
        let mut removes = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_c.len() && j < new_c.len() {
            match entry_cmp(&old_c[i], &new_c[j]) {
                Ordering::Less => {
                    removes.push(old_c[i].clone());
                    i += 1;
                }
                Ordering::Greater => {
                    installs.push(new_c[j].clone());
                    j += 1;
                }
                Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        removes.extend_from_slice(&old_c[i..]);
        installs.extend_from_slice(&new_c[j..]);
        Self { installs, removes }
    }

    /// Number of TCAM entry writes this delta costs (installs + removes).
    pub fn churn(&self) -> usize {
        self.installs.len() + self.removes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.installs.is_empty() && self.removes.is_empty()
    }
}

/// A transactional ruleset update: the versioned delta the controller
/// sends down the (fallible) action channel, plus the retrained float
/// whitelist the delta was compiled from — the emulator's exact model of
/// the post-transaction TCAM image, installed in the same atomic flip.
///
/// Per-flow actions (blacklist install/remove, flow clears) stay on the
/// flat [`crate::pipeline::ControlAction`] path; this type owns the
/// *ruleset lifecycle* only.
#[derive(Clone, Debug)]
pub struct RulesetTxn {
    /// Monotonic transaction version; the data plane at version `v`
    /// applies exactly `v + 1`.
    pub version: u64,
    /// Entries to add, canonical new-table order.
    pub installs: Vec<RangeEntry>,
    /// Entries to delete, canonical old-table order.
    pub removes: Vec<RangeEntry>,
    /// Bit width per TCAM field — lets a version-1 transaction bootstrap
    /// an empty table and every later one validate shape agreement.
    pub field_bits: Vec<u8>,
    /// The float FL whitelist matching the post-transaction table. The
    /// PL whitelist is not part of the drift loop and keeps its installed
    /// rules.
    pub fl_rules: RuleSet,
}

impl RulesetTxn {
    /// A transaction carrying the delta from `old` to `new`.
    pub fn diff(version: u64, old: &RangeTable, new: &RangeTable, fl_rules: RuleSet) -> Self {
        let d = RulesetDiff::between(old, new);
        Self {
            version,
            installs: d.installs,
            removes: d.removes,
            field_bits: new.field_bits.clone(),
            fl_rules,
        }
    }

    /// A transaction installing `table` wholesale (the version-1
    /// bootstrap against an empty data plane).
    pub fn full_install(version: u64, table: &RangeTable, fl_rules: RuleSet) -> Self {
        Self {
            version,
            installs: canonical_entries(table),
            removes: Vec::new(),
            field_bits: table.field_bits.clone(),
            fl_rules,
        }
    }

    /// Number of TCAM entry writes this transaction costs.
    pub fn churn(&self) -> usize {
        self.installs.len() + self.removes.len()
    }
}

/// Data-plane-side accounting of the ruleset lifecycle, mirrored into
/// the `switch.ruleset.*` telemetry counters: TCAM entry writes actually
/// performed, completed atomic swaps, idempotent replays absorbed, and
/// stale transactions rejected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RulesetCounters {
    /// Entries written by accepted transactions (Σ installs).
    pub installed: u64,
    /// Entries deleted by accepted transactions (Σ removes).
    pub removed: u64,
    /// Completed epoch flips (accepted transactions).
    pub swaps: u64,
    /// Transactions rejected with [`SwitchError::StaleRuleset`].
    pub stale: u64,
    /// Re-deliveries of already-applied versions absorbed as no-ops.
    pub replayed: u64,
}

/// Applies a delta to `base`, producing the successor table in canonical
/// order. Fails with [`SwitchError::StaleRuleset`] when the delta does
/// not fit the base — a remove names an entry the base does not hold, or
/// the field shape disagrees — which means the transaction was diffed
/// against a different table than the one installed.
///
/// `expected`/`got` in the error carry the version bookkeeping of the
/// caller (`expected` = the version the plane would accept next).
pub(crate) fn apply_delta(
    base: &RangeTable,
    installs: &[RangeEntry],
    removes: &[RangeEntry],
    field_bits: &[u8],
    expected: u64,
    got: u64,
) -> Result<RangeTable, SwitchError> {
    let stale = SwitchError::StaleRuleset { expected, got };
    if !base.field_bits.is_empty() && base.field_bits != field_bits {
        return Err(stale);
    }
    let mut entries = canonical_entries(base);
    for r in removes {
        if r.fields.len() != field_bits.len() {
            return Err(stale);
        }
        match entries.binary_search_by(|e| entry_cmp(e, r)) {
            Ok(pos) => {
                entries.remove(pos);
            }
            Err(_) => return Err(stale),
        }
    }
    for ins in installs {
        if ins.fields.len() != field_bits.len() {
            return Err(stale);
        }
        // Insert at the canonical position (after any equal entries, so
        // duplicate installs keep a stable order).
        let pos = entries.partition_point(|e| entry_cmp(e, ins) != Ordering::Greater);
        entries.insert(pos, ins.clone());
    }
    let mut table = RangeTable::new(field_bits.to_vec());
    for e in entries {
        table.push(e);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lo: u32, hi: u32, priority: u32) -> RangeEntry {
        RangeEntry { fields: vec![(lo, hi)], priority }
    }

    fn table(entries: Vec<RangeEntry>) -> RangeTable {
        let mut t = RangeTable::new(vec![8]);
        for e in entries {
            t.push(e);
        }
        t
    }

    #[test]
    fn diff_of_identical_tables_is_empty() {
        let a = table(vec![entry(0, 10, 0), entry(5, 20, 1)]);
        // Same content, different push order: still no churn.
        let b = table(vec![entry(5, 20, 1), entry(0, 10, 0)]);
        let d = RulesetDiff::between(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.churn(), 0);
    }

    #[test]
    fn diff_churn_is_symmetric_difference() {
        let a = table(vec![entry(0, 10, 0), entry(5, 20, 1), entry(30, 40, 2)]);
        let b = table(vec![entry(0, 10, 0), entry(5, 21, 1), entry(50, 60, 3)]);
        let d = RulesetDiff::between(&a, &b);
        assert_eq!(d.removes, vec![entry(5, 20, 1), entry(30, 40, 2)]);
        assert_eq!(d.installs, vec![entry(5, 21, 1), entry(50, 60, 3)]);
        assert_eq!(d.churn(), 4);
    }

    #[test]
    fn diff_respects_multiset_counts() {
        // Two identical entries in `a`, one in `b`: exactly one remove.
        let a = table(vec![entry(0, 10, 0), entry(0, 10, 0)]);
        let b = table(vec![entry(0, 10, 0)]);
        let d = RulesetDiff::between(&a, &b);
        assert_eq!(d.removes.len(), 1);
        assert!(d.installs.is_empty());
    }

    #[test]
    fn apply_delta_reconstructs_new_table() {
        let a = table(vec![entry(0, 10, 0), entry(5, 20, 1), entry(30, 40, 2)]);
        let b = table(vec![entry(50, 60, 3), entry(0, 10, 0), entry(5, 21, 1)]);
        let d = RulesetDiff::between(&a, &b);
        let applied = apply_delta(&a, &d.installs, &d.removes, &b.field_bits, 1, 1).unwrap();
        assert_eq!(applied.entries(), canonical_entries(&b).as_slice());
    }

    #[test]
    fn apply_delta_rejects_foreign_base() {
        let a = table(vec![entry(0, 10, 0)]);
        let d = RulesetDiff {
            installs: vec![],
            removes: vec![entry(99, 100, 7)], // not in `a`
        };
        let err = apply_delta(&a, &d.installs, &d.removes, &[8], 2, 5).unwrap_err();
        assert_eq!(err, SwitchError::StaleRuleset { expected: 2, got: 5 });
    }

    #[test]
    fn apply_delta_rejects_field_shape_mismatch() {
        let a = table(vec![entry(0, 10, 0)]);
        let err = apply_delta(&a, &[], &[], &[8, 8], 2, 2).unwrap_err();
        assert!(matches!(err, SwitchError::StaleRuleset { .. }));
    }

    #[test]
    fn canonicalisation_preserves_match_semantics() {
        // Overlapping entries with mixed priorities and a same-priority
        // pair: match bit and winning priority must survive reordering.
        let t = table(vec![entry(50, 200, 1), entry(0, 100, 5), entry(0, 100, 1)]);
        let canon = {
            let mut c = RangeTable::new(t.field_bits.clone());
            for e in canonical_entries(&t) {
                c.push(e);
            }
            c
        };
        for k in 0..=255u32 {
            let a = t.lookup(&[k]).map(|e| e.priority);
            let b = canon.lookup(&[k]).map(|e| e.priority);
            assert_eq!(a, b, "key {k}");
        }
    }
}
