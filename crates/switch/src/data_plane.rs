//! The [`DataPlane`] abstraction: what a switch backend must provide.
//!
//! The controller and the replay harness do not care *how* packets are
//! classified — serially ([`crate::pipeline::Pipeline`]) or across shards
//! ([`crate::sharded::ShardedPipeline`]) — only that a backend can consume
//! packet batches, surface the digests those batches produced **in packet
//! arrival order**, accept control-plane commands, and report its
//! counters. Everything downstream (controller feedback, the confusion
//! matrix, the telemetry report) is expressed against this trait, which is
//! what makes backends interchangeable and byte-comparable.
//!
//! ## Contract
//!
//! * `process_batch` appends one outcome per packet, in input order, and
//!   advances `packets_processed` by the batch length.
//! * `drain_digests_into` yields every digest generated since the last
//!   drain, ordered by the arrival sequence number of the generating
//!   packet — **not** by worker/shard completion order. Two backends fed
//!   the same packets with the same control feedback must produce the
//!   same digest stream.
//! * `apply` takes effect before the next `process_batch` call; backends
//!   need not support mid-batch rule changes (hardware installs rules
//!   between packets too, just at a finer grain).
//!
//! `process_batch` and `classify_batch` are the **primary** entry points:
//! both stock backends ingest each batch into a structure-of-arrays
//! [`PacketBatch`](iguard_flow::batch::PacketBatch) / column set and
//! classify it in fixed 1024-row chunks, so callers should hand over the
//! largest batches their latency budget allows. Per-packet processing is
//! just a batch of one (the [`crate::pipeline::ScalarPipeline`] backend
//! exists as the per-packet oracle/baseline).

use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::Packet;
use iguard_flow::table::{FlowTableStats, PressureStats};
use iguard_runtime::Dataset;

use iguard_core::error::SwitchError;

use crate::pipeline::{
    ControlAction, Digest, PathCounters, ProcessOutcome, SeqDigest, WhitelistCounters,
};
use crate::ruleset::{RulesetCounters, RulesetTxn};

/// Occupancy and approximation statistics of a sketch-assisted backend
/// (see `crate::sketched`). Exact backends report `None` from
/// [`DataPlane::sketch_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Flows currently holding an exact table slot.
    pub tracked: usize,
    /// Hard cap on `tracked` derived from the byte budget
    /// (`usize::MAX` = unbudgeted).
    pub max_tracked: usize,
    /// Exact-table bytes held by tracked flows right now.
    pub resident_bytes: usize,
    /// Configured resident-byte budget, if any.
    pub budget_bytes: Option<usize>,
    /// Fixed overhead of the admission sketches (CMS + Bloom).
    pub sketch_bytes: usize,
    /// Flows promoted from the sketch into an exact slot.
    pub promoted: u64,
    /// Packets absorbed by the sketch (never claimed an exact slot).
    pub absorbed: u64,
    /// Tracked flows evicted under budget pressure.
    pub evicted: u64,
}

/// Overload-layer observability of a backend: the merged pressure view
/// of its flow-table shards plus the degraded-mode and digest-shedding
/// accounting (see `crate::pipeline::OverloadConfig`). Rates and
/// high-water marks in `pressure` merge by max across shards — one hot
/// shard stays visible in the aggregate — while the event counts sum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Merged flow-table pressure view (see
    /// [`iguard_flow::table::PressureStats::merge`]).
    pub pressure: PressureStats,
    /// Logical shards currently in degraded mode.
    pub degraded_shards: u32,
    /// Degraded-mode entries across all shards so far.
    pub degraded_entries: u64,
    /// Degraded-mode exits across all shards so far.
    pub degraded_exits: u64,
    /// Total batches spent degraded, summed over shards (residency).
    pub degraded_batches: u64,
    /// Benign digests shed (at the source while degraded, or displaced /
    /// dropped at the buffer cap).
    pub shed_benign: u64,
    /// Malicious digests dropped because the buffer was cap-full of
    /// malicious evidence already.
    pub shed_malicious: u64,
    /// Sketch admissions rejected only because pressure raised the
    /// promote threshold (sketch-assisted backends; 0 elsewhere).
    pub admission_tightened: u64,
    /// Most digests any one shard ever buffered at once.
    pub digest_buffered_hwm: usize,
}

impl OverloadStats {
    /// Folds another shard's view into this one (sum events, merge
    /// pressure, max the buffer high-water mark).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            pressure: self.pressure.merge(&other.pressure),
            degraded_shards: self.degraded_shards + other.degraded_shards,
            degraded_entries: self.degraded_entries + other.degraded_entries,
            degraded_exits: self.degraded_exits + other.degraded_exits,
            degraded_batches: self.degraded_batches + other.degraded_batches,
            shed_benign: self.shed_benign + other.shed_benign,
            shed_malicious: self.shed_malicious + other.shed_malicious,
            admission_tightened: self.admission_tightened + other.admission_tightened,
            digest_buffered_hwm: self.digest_buffered_hwm.max(other.digest_buffered_hwm),
        }
    }
}

/// A switch data-plane backend.
pub trait DataPlane {
    /// Classifies a batch, appending one [`ProcessOutcome`] per packet in
    /// input order. Implementations clear `out` first; the caller owns the
    /// buffer so the hot loop reuses its allocation. This is the primary
    /// ingest path: stock backends run it columnar (structure-of-arrays
    /// feature extraction + batched index probes), and results are
    /// byte-identical to per-packet processing at any batch size.
    fn process_batch(&mut self, pkts: &[Packet], out: &mut Vec<ProcessOutcome>);

    /// Appends the digests accumulated since the last drain, in packet
    /// arrival order, clearing the backend's internal buffer.
    fn drain_digests_into(&mut self, out: &mut Vec<Digest>);

    /// Like [`Self::drain_digests_into`], but keeps each digest's global
    /// packet sequence tag. The fallible digest channel and the
    /// controller's dedup window are keyed on these tags, so chaos replay
    /// uses this drain.
    fn drain_seq_digests_into(&mut self, out: &mut Vec<SeqDigest>);

    /// Applies a controller command (blacklist install/remove, flow clear).
    fn apply(&mut self, action: ControlAction);

    /// Applies a versioned whitelist-ruleset transaction (the lifecycle
    /// half of the control-plane API; per-flow actions stay on
    /// [`Self::apply`]). Like `apply`, the transaction takes effect before
    /// the next `process_batch` call, and the swap is **hitless**: the
    /// successor ruleset is staged completely off to the side and flipped
    /// in whole, so every packet is classified by exactly one complete
    /// ruleset. Versions are monotonic — a replayed transaction
    /// (`txn.version <= ruleset_version()`) is an idempotent no-op counted
    /// in telemetry, and a version beyond the next expected one is
    /// rejected with [`SwitchError::StaleRuleset`] because its delta was
    /// computed against a base this plane does not hold.
    fn apply_ruleset(&mut self, txn: &RulesetTxn) -> Result<(), SwitchError>;

    /// Version of the installed whitelist ruleset (0 until the first
    /// transaction is applied).
    fn ruleset_version(&self) -> u64;

    /// Lifecycle accounting of the ruleset transactions seen so far
    /// (entries installed/removed, swaps, replayed no-ops, stale rejects).
    fn ruleset_counters(&self) -> RulesetCounters;

    /// The installed blacklist in canonical sorted order — equality checks
    /// across backends, and the source a crashed controller rebuilds its
    /// install map from.
    fn blacklist_contents(&self) -> Vec<FiveTuple>;

    /// Re-derives one digest per *labeled* resident flow (deterministic
    /// order, sequence tags from the [`crate::pipeline::RESYNC_SEQ_BASE`]
    /// space). The controller triggers this after a digest-channel outage:
    /// classifications whose original digests were lost in transit are
    /// still present in the flow-label storage, so a resync sweep recovers
    /// the missed installs and storage releases.
    fn resync_labeled_into(&mut self, out: &mut Vec<SeqDigest>);

    /// Aggregate per-path packet counters.
    fn counters(&self) -> PathCounters;

    /// Aggregate whitelist-index lookup counters (FL + PL lookups and
    /// hits). Deterministic across worker counts and shard groupings.
    fn whitelist_counters(&self) -> WhitelistCounters;

    /// Classifies raw 13-feature FL rows in bulk through the compiled
    /// whitelist index (`true` = malicious, i.e. no whitelist rule
    /// matched), applying the backend's configured log-compress map.
    /// Clears `out` first; one verdict per row, in row order, identical at
    /// any worker count. This is the offline/batch twin of the blue path's
    /// per-packet FL decision — same rules, same index, same scratch reuse.
    fn classify_batch(&mut self, rows: &Dataset, out: &mut Vec<bool>);

    /// Aggregate flow-table occupancy/collision statistics.
    fn flow_table_stats(&self) -> FlowTableStats;

    /// Number of blacklist entries currently installed.
    fn blacklist_len(&self) -> usize;

    /// Total packets offered to `process_batch` (and `process`) so far.
    fn packets_processed(&self) -> u64;

    /// Sketch-occupancy statistics; `None` for exact backends (the
    /// default), `Some` for sketch-assisted ones.
    fn sketch_stats(&self) -> Option<SketchStats> {
        None
    }

    /// Overload-layer statistics: merged pressure view, degraded-mode
    /// residency, and digest-shedding counts. Stock backends override
    /// this; the default is the all-zero view for backends that predate
    /// the overload layer.
    fn overload_stats(&self) -> OverloadStats {
        OverloadStats::default()
    }

    /// Convenience allocating drain; prefer [`Self::drain_digests_into`]
    /// in loops.
    fn drain_digests(&mut self) -> Vec<Digest> {
        let mut out = Vec::new();
        self.drain_digests_into(&mut out);
        out
    }
}
