//! Compiled index over a quantized [`RangeTable`] — the switch-side twin
//! of [`iguard_core::rule_index`].
//!
//! A [`RangeTable`] resolves a key by scanning every installed entry and
//! keeping the minimum priority. [`RangeIndex`] compiles the same entries
//! into per-field interval tables (cut points = the distinct `lo` and
//! `hi + 1` values of all entries) so a lookup is one binary search per
//! field plus a word-wise AND — and returns the **identical** entry on
//! every key. Priority order is baked in at build time: bitmap bit
//! positions are assigned by ascending `(priority, entry position)`, which
//! reproduces the scan's min-by-priority-earliest-wins tie-break, so the
//! first set bit of the AND result *is* the winning entry.

use iguard_core::rule_index::{BatchScratch, IndexBuilder, IntervalIndex};
use iguard_telemetry::counter;

use crate::tcam::RangeTable;

/// Reusable per-lookup scratch: the quantized key and the bitmap AND
/// accumulator. One per worker/shard; lets batch classification quantize
/// and intersect without touching the allocator.
#[derive(Clone, Debug, Default)]
pub struct RangeScratch {
    pub key: Vec<u32>,
    pub words: Vec<u64>,
}

/// The compiled first-match index of a [`RangeTable`].
#[derive(Clone, Debug)]
pub struct RangeIndex {
    inner: IntervalIndex,
    /// Bit position → entry position in the source table (push order),
    /// sorted by `(priority, position)` at build time.
    order: Vec<u32>,
}

impl RangeIndex {
    pub fn build(table: &RangeTable) -> Self {
        let entries = table.entries();
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_by_key(|&i| (entries[i as usize].priority, i));
        let mut b = IndexBuilder::new(table.field_bits.len());
        let mut buf = Vec::with_capacity(table.field_bits.len());
        for &pos in &order {
            buf.clear();
            for &(lo, hi) in &entries[pos as usize].fields {
                // Inclusive [lo, hi] → half-open [lo, hi + 1) in u64 cut
                // space (no overflow: field values are u32).
                buf.push((lo as u64, hi as u64 + 1));
            }
            b.push_rule(&buf);
        }
        Self { inner: b.finish(), order }
    }

    /// Entry position (into [`RangeTable::entries`]) of the winning entry
    /// — equal to [`RangeTable::lookup_idx`] on every key.
    pub fn lookup(&self, key: &[u32], scratch: &mut Vec<u64>) -> Option<usize> {
        counter!("switch.rule_index.lookup").inc();
        match self.inner.lookup_with(scratch, |d| key[d] as u64) {
            Some(bit) => {
                counter!("switch.rule_index.hit").inc();
                Some(self.order[bit as usize] as usize)
            }
            None => {
                counter!("switch.rule_index.miss").inc();
                None
            }
        }
    }

    /// Columnar batch lookup: `cols[f]` is field `f` of every quantized
    /// key in the batch (all columns the same length). Fills `out` with
    /// one entry position per row, equal to per-key [`RangeIndex::lookup`]
    /// calls; the `lookup`/`hit`/`miss` counters advance by the same
    /// totals as the scalar path.
    pub fn lookup_batch(
        &self,
        cols: &[&[u32]],
        scratch: &mut BatchScratch,
        out: &mut Vec<Option<u32>>,
    ) {
        let n = cols.first().map_or(0, |c| c.len());
        debug_assert!(cols.iter().all(|c| c.len() == n), "ragged key columns");
        counter!("switch.rule_index.lookup").add(n as u64);
        self.inner.lookup_batch_with(scratch, n, |d, i| cols[d][i] as u64, out);
        let mut hits = 0u64;
        for slot in out.iter_mut() {
            if let Some(bit) = slot {
                *bit = self.order[*bit as usize];
                hits += 1;
            }
        }
        counter!("switch.rule_index.hit").add(hits);
        counter!("switch.rule_index.miss").add(n as u64 - hits);
    }

    pub fn n_rules(&self) -> usize {
        self.inner.n_rules()
    }

    pub fn total_cuts(&self) -> usize {
        self.inner.total_cuts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcam::{RangeEntry, RangeTable};

    fn table(entries: &[(&[(u32, u32)], u32)]) -> RangeTable {
        let fields = entries.first().map_or(1, |(f, _)| f.len());
        let mut t = RangeTable::new(vec![8; fields]);
        for &(fields, priority) in entries {
            t.push(RangeEntry { fields: fields.to_vec(), priority });
        }
        t
    }

    #[test]
    fn empty_table_misses() {
        let idx = RangeIndex::build(&RangeTable::new(vec![8]));
        assert_eq!(idx.lookup(&[0], &mut Vec::new()), None);
    }

    #[test]
    fn priority_beats_push_order() {
        // Entry 1 has the better (lower) priority on the overlap.
        let t = table(&[(&[(0, 100)], 5), (&[(50, 200)], 1)]);
        let idx = RangeIndex::build(&t);
        let mut s = Vec::new();
        assert_eq!(idx.lookup(&[60], &mut s), Some(1));
        assert_eq!(idx.lookup(&[10], &mut s), Some(0));
        assert_eq!(idx.lookup(&[150], &mut s), Some(1));
        assert_eq!(idx.lookup(&[201], &mut s), None);
    }

    #[test]
    fn priority_ties_resolve_to_earliest_entry() {
        let t = table(&[(&[(0, 100)], 3), (&[(0, 100)], 3)]);
        let idx = RangeIndex::build(&t);
        assert_eq!(idx.lookup(&[50], &mut Vec::new()), Some(0));
        assert_eq!(t.lookup_idx(&[50]), Some(0));
    }

    /// The columnar probe agrees with per-key lookups over a full grid,
    /// fed both in sorted order (long amortised runs) and field-swapped
    /// order (descending runs in the second field).
    #[test]
    fn batch_lookup_matches_scalar_on_full_grid() {
        let t = table(&[
            (&[(0, 15), (3, 9)], 2),
            (&[(4, 30), (0, 31)], 0),
            (&[(10, 10), (10, 10)], 1),
            (&[(0, 31), (20, 25)], 3),
        ]);
        let idx = RangeIndex::build(&t);
        let mut grid: Vec<[u32; 2]> =
            (0..=32u32).flat_map(|a| (0..=32u32).map(move |b| [a, b])).collect();
        for pass in 0..2 {
            if pass == 1 {
                grid.reverse();
            }
            let cols: Vec<Vec<u32>> = (0..2).map(|f| grid.iter().map(|k| k[f]).collect()).collect();
            let views: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut scratch = BatchScratch::default();
            let mut out = Vec::new();
            idx.lookup_batch(&views, &mut scratch, &mut out);
            let mut s = Vec::new();
            for (key, got) in grid.iter().zip(&out) {
                assert_eq!(got.map(|p| p as usize), idx.lookup(key, &mut s), "key {key:?}");
            }
        }
    }

    /// Exhaustive agreement with the linear scan on a multi-field table,
    /// including inclusive upper edges.
    #[test]
    fn agrees_with_linear_scan_on_full_grid() {
        let t = table(&[
            (&[(0, 15), (3, 9)], 2),
            (&[(4, 30), (0, 31)], 0),
            (&[(10, 10), (10, 10)], 1),
            (&[(0, 31), (20, 25)], 3),
        ]);
        let idx = RangeIndex::build(&t);
        let mut s = Vec::new();
        for a in 0..=32u32 {
            for b in 0..=32u32 {
                let key = [a, b];
                assert_eq!(idx.lookup(&key, &mut s), t.lookup_idx(&key), "key {key:?}");
                assert_eq!(
                    t.lookup_idx(&key).map(|i| &t.entries()[i]),
                    t.lookup(&key),
                    "lookup_idx vs lookup at {key:?}"
                );
            }
        }
    }
}
