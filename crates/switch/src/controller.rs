//! The control plane: digest consumption and blacklist management.
//!
//! The controller receives a digest whenever the data plane classifies a
//! flow, releases the flow's stateful storage, and — for malicious flows —
//! installs a blacklist rule, evicting old entries FIFO or LRU when the
//! table is full (paper §3.3.2). It also accounts control-plane bandwidth
//! for the App. B.2 comparison.
//!
//! ## Hardening (PR 4)
//!
//! The digest and action paths between switch and controller are lossy in
//! practice (dropped digests, duplicated retransmissions, gRPC write
//! failures, TCAM-full rejections). This module makes the controller safe
//! under those faults:
//!
//! * **Idempotent digest processing.** [`Controller::process_seq_digests_into`]
//!   dedups on the global packet sequence tag carried by
//!   [`SeqDigest`](crate::pipeline::SeqDigest), over a bounded sliding
//!   window, so a duplicated digest cannot double-count bandwidth, churn
//!   eviction state, or re-issue installs.
//! * **Bounded retries with backoff.** Failed action sends are re-queued
//!   by [`Controller::note_send_failure`] with deterministic exponential
//!   backoff plus seeded jitter, capped at
//!   [`RetryPolicy::max_attempts`]; the due ones are re-drained each tick
//!   via [`Controller::take_due_retries`].
//! * **Graceful degradation.** When the retry queue saturates, the
//!   controller sheds the lowest-priority work first (flow-storage clears
//!   before blacklist removes before installs) and raises a
//!   telemetry-visible `degraded` flag with hysteresis, instead of growing
//!   without bound.
//! * **Checkpoint / rebuild.** [`Controller::snapshot`] /
//!   [`Controller::restore_from`] round-trip the complete mutable state
//!   (including the retry RNG, so the jitter stream resumes exactly);
//!   [`Controller::rebuild_from_blacklist`] cold-starts a crashed
//!   controller from the data plane's installed rules.

use std::collections::{HashMap, HashSet, VecDeque};

use iguard_core::drift::{DriftConfig, DriftDetector};
use iguard_flow::five_tuple::FiveTuple;
use iguard_runtime::Rng;
use iguard_telemetry::counter;

use crate::pipeline::{ControlAction, Digest, SeqDigest};
use crate::ruleset::RulesetTxn;

/// Blacklist eviction policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    Fifo,
    Lru,
}

/// Retry behaviour for failed control-plane action sends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total send attempts per action before giving up (first send
    /// included), at which point the action is counted exhausted.
    pub max_attempts: u32,
    /// Backoff before attempt `n` is `min(base << (n-1), max)` ticks.
    pub base_backoff_ticks: u64,
    pub max_backoff_ticks: u64,
    /// Uniform jitter in `0..=jitter_ticks` added to each backoff, drawn
    /// from the controller's own seeded stream (deterministic).
    pub jitter_ticks: u64,
    /// Retry-queue capacity; beyond it, lowest-priority work is shed.
    pub queue_cap: usize,
    /// Seed of the jitter RNG stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            base_backoff_ticks: 1,
            max_backoff_ticks: 64,
            jitter_ticks: 1,
            queue_cap: 256,
            seed: 0x0C11_7E12_1E72_11A5,
        }
    }
}

/// Controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Maximum blacklist entries the data plane can hold.
    pub blacklist_capacity: usize,
    pub policy: EvictionPolicy,
    /// Bytes accounted per digest (13.125 for iGuard, ~65.125 for designs
    /// that ship flow features to the control plane).
    pub digest_bytes: f64,
    /// Sliding dedup window (in digests) for sequence-tagged processing.
    /// 0 disables dedup. Must exceed the channel's maximum
    /// duplicate-delivery distance for exactly-once semantics.
    pub dedup_window: usize,
    pub retry: RetryPolicy,
    /// Drift detection over the admitted digest stream; `None` (the
    /// default) turns the adaptation loop off.
    pub drift: Option<DriftConfig>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            blacklist_capacity: 4096,
            policy: EvictionPolicy::Fifo,
            digest_bytes: crate::pipeline::DIGEST_BYTES_IGUARD,
            dedup_window: 4096,
            retry: RetryPolicy::default(),
            drift: None,
        }
    }
}

/// An action awaiting re-send after a failed attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
struct PendingRetry {
    action: ControlAction,
    /// Attempts already made (≥1 when queued).
    attempt: u32,
    /// Tick at/after which the re-send is due.
    due: u64,
}

/// A staged ruleset transaction awaiting delivery to the data plane.
///
/// Unlike per-flow [`PendingRetry`] work, a staged ruleset is never
/// abandoned: it is the only path off a drifted model, and replays are
/// idempotent (the plane no-ops versions it already holds), so the
/// controller re-sends it with capped backoff until the channel heals —
/// which is what lets retraining converge after an arbitrarily long
/// outage.
struct PendingRuleset {
    txn: RulesetTxn,
    /// Send attempts made so far.
    attempts: u32,
    /// Tick at/after which the next send is due.
    due: u64,
}

/// Shedding priority: higher keeps its retry-queue slot longer. Losing a
/// `ClearFlow` wastes one flow-table slot until resync; losing an install
/// forwards malicious traffic — so installs outrank everything.
fn action_priority(a: &ControlAction) -> u8 {
    match a {
        ControlAction::InstallBlacklist(_) => 2,
        ControlAction::RemoveBlacklist(_) => 1,
        ControlAction::ClearFlow(_) => 0,
    }
}

/// Consecutive quiescent [`Controller::take_due_retries`] calls (empty
/// retry queue, nothing due) required before the degraded flag clears.
const DEGRADED_CLEAR_TICKS: u64 = 4;

/// A point-in-time copy of the controller's complete mutable state.
///
/// Collections are stored in deterministic order (`installed` sorted by
/// key) so two snapshots of equal logical state compare equal.
///
/// The drift-detector window and any staged ruleset transaction are
/// deliberately **not** part of the snapshot: both are reconstructible —
/// the detector re-arms on the live digest stream, and ruleset replays
/// are idempotent, so the adaptation loop simply re-stages after a
/// restore instead of resuming a possibly-superseded delivery.
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerSnapshot {
    queue: Vec<FiveTuple>,
    installed: Vec<(FiveTuple, u64)>,
    clock: u64,
    digests_seen: u64,
    digest_bytes_total: f64,
    dedup_order: Vec<u64>,
    retry_queue: Vec<PendingRetry>,
    retry_rng_state: [u64; 4],
    degraded: bool,
    ever_degraded: bool,
    quiescent_ticks: u64,
    dup_digests: u64,
    retries: u64,
    retries_exhausted: u64,
    shed: u64,
}

/// The control-plane process.
pub struct Controller {
    cfg: ControllerConfig,
    /// FIFO install-order queue (front = oldest). Only maintained under
    /// [`EvictionPolicy::Fifo`]; LRU picks victims by recency stamp and
    /// would otherwise grow this without bound.
    queue: VecDeque<FiveTuple>,
    /// Membership + recency stamps.
    installed: HashMap<FiveTuple, u64>,
    clock: u64,
    digests_seen: u64,
    digest_bytes_total: f64,
    /// Sequence tags inside the dedup window.
    dedup_seen: HashSet<u64>,
    /// Window eviction order (front = oldest tag).
    dedup_order: VecDeque<u64>,
    retry_queue: VecDeque<PendingRetry>,
    retry_rng: Rng,
    degraded: bool,
    ever_degraded: bool,
    quiescent_ticks: u64,
    dup_digests: u64,
    retries: u64,
    retries_exhausted: u64,
    shed: u64,
    /// Drift detector over admitted digests (None = adaptation off).
    drift: Option<DriftDetector>,
    /// Set by a drift fire, cleared by [`Self::take_drift_trigger`].
    drift_pending: bool,
    pending_rulesets: VecDeque<PendingRuleset>,
    rulesets_staged: u64,
    rulesets_delivered: u64,
    ruleset_send_failures: u64,
}

impl Controller {
    pub fn new(cfg: ControllerConfig) -> Self {
        assert!(cfg.blacklist_capacity > 0, "blacklist capacity must be positive");
        Self {
            queue: VecDeque::new(),
            installed: HashMap::new(),
            clock: 0,
            digests_seen: 0,
            digest_bytes_total: 0.0,
            dedup_seen: HashSet::new(),
            dedup_order: VecDeque::new(),
            retry_queue: VecDeque::new(),
            retry_rng: Rng::seed_from_u64(cfg.retry.seed),
            degraded: false,
            ever_degraded: false,
            quiescent_ticks: 0,
            dup_digests: 0,
            retries: 0,
            retries_exhausted: 0,
            shed: 0,
            drift: cfg.drift.map(DriftDetector::new),
            drift_pending: false,
            pending_rulesets: VecDeque::new(),
            rulesets_staged: 0,
            rulesets_delivered: 0,
            ruleset_send_failures: 0,
            cfg,
        }
    }

    /// Allocating convenience over [`Self::process_seq_digests_into`].
    pub fn process_seq_digests(&mut self, digests: &[SeqDigest]) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        self.process_seq_digests_into(digests, &mut actions);
        actions
    }

    /// Consumes a batch of sequence-tagged digests, producing data-plane
    /// commands in a caller-owned buffer (cleared first).
    ///
    /// This is the **single** digest entry point: digests whose tag is
    /// already inside the dedup window are dropped (counted in
    /// [`Self::dup_digests`]) before touching bandwidth accounting or
    /// eviction state. Lossless callers tag digests with their global
    /// arrival sequence — unique tags make dedup a no-op, so one path
    /// serves lossless and lossy channels with identical semantics (the
    /// former non-seq `process_digests` entry point, which skipped dedup,
    /// was removed).
    pub fn process_seq_digests_into(
        &mut self,
        digests: &[SeqDigest],
        actions: &mut Vec<ControlAction>,
    ) {
        actions.clear();
        for &sd in digests {
            if !self.dedup_admit(sd.seq) {
                self.dup_digests += 1;
                counter!("switch.controller.dup_digest").inc();
                continue;
            }
            self.process_one(sd.digest, actions);
        }
    }

    /// Returns false if `seq` was already seen inside the window.
    fn dedup_admit(&mut self, seq: u64) -> bool {
        if self.cfg.dedup_window == 0 {
            return true;
        }
        if !self.dedup_seen.insert(seq) {
            return false;
        }
        self.dedup_order.push_back(seq);
        if self.dedup_order.len() > self.cfg.dedup_window {
            if let Some(old) = self.dedup_order.pop_front() {
                self.dedup_seen.remove(&old);
            }
        }
        true
    }

    fn process_one(&mut self, d: Digest, actions: &mut Vec<ControlAction>) {
        self.digests_seen += 1;
        self.digest_bytes_total += self.cfg.digest_bytes;
        self.clock += 1;
        counter!("switch.controller.digest").inc();
        // Drift watch runs on *admitted* digests only: duplicates were
        // already dropped, so a retransmission storm cannot fake a shift.
        if let Some(det) = &mut self.drift {
            if det.observe(d.malicious) {
                self.drift_pending = true;
                counter!("switch.controller.drift_trigger").inc();
            }
        }
        let key = d.five.canonical();
        // Always release the flow's stateful storage: the class now
        // lives in the label register / blacklist.
        actions.push(ControlAction::ClearFlow(key));
        if !d.malicious {
            return;
        }
        if let Some(stamp) = self.installed.get_mut(&key) {
            // Already blacklisted: refresh recency for LRU.
            *stamp = self.clock;
            return;
        }
        // Evict if full.
        if self.installed.len() >= self.cfg.blacklist_capacity {
            if let Some(victim) = self.pick_victim() {
                self.installed.remove(&victim);
                counter!("switch.controller.blacklist_evict").inc();
                actions.push(ControlAction::RemoveBlacklist(victim));
            }
        }
        self.installed.insert(key, self.clock);
        if self.cfg.policy == EvictionPolicy::Fifo {
            // LRU never consumes this queue (victims come from recency
            // stamps), so pushing under LRU would leak one entry per
            // install forever.
            self.queue.push_back(key);
        }
        counter!("switch.controller.blacklist_install").inc();
        actions.push(ControlAction::InstallBlacklist(key));
    }

    fn pick_victim(&mut self) -> Option<FiveTuple> {
        match self.cfg.policy {
            EvictionPolicy::Fifo => {
                // Pop queue entries until one is still installed.
                while let Some(cand) = self.queue.pop_front() {
                    if self.installed.contains_key(&cand) {
                        return Some(cand);
                    }
                }
                None
            }
            EvictionPolicy::Lru => {
                self.installed.iter().min_by_key(|(_, &stamp)| stamp).map(|(k, _)| *k)
            }
        }
    }

    /// Records a failed action send and schedules a re-send with
    /// exponential backoff + jitter, or gives up after
    /// [`RetryPolicy::max_attempts`]. `attempt` is how many sends have
    /// been made so far (1 for the first failure).
    pub fn note_send_failure(&mut self, action: ControlAction, attempt: u32, tick: u64) {
        self.retries += 1;
        counter!("switch.controller.retry").inc();
        if attempt >= self.cfg.retry.max_attempts {
            self.retries_exhausted += 1;
            counter!("switch.controller.retry_exhausted").inc();
            self.enter_degraded();
            return;
        }
        let r = self.cfg.retry;
        let shift = (attempt - 1).min(62);
        let backoff = r.base_backoff_ticks.saturating_shl(shift).min(r.max_backoff_ticks).max(1);
        let jitter =
            if r.jitter_ticks > 0 { self.retry_rng.gen_range(0..=r.jitter_ticks) } else { 0 };
        let pending = PendingRetry { action, attempt: attempt + 1, due: tick + backoff + jitter };
        if self.retry_queue.len() >= r.queue_cap {
            self.shed_for(&pending);
        } else {
            self.retry_queue.push_back(pending);
        }
        self.quiescent_ticks = 0;
    }

    /// Queue is full: drop the lowest-priority entry if the newcomer
    /// outranks it, else drop the newcomer. Either way the controller is
    /// now degraded — it is knowingly discarding control-plane work.
    fn shed_for(&mut self, pending: &PendingRetry) {
        self.enter_degraded();
        let victim = self
            .retry_queue
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (action_priority(&p.action), usize::MAX - i))
            .map(|(i, p)| (i, action_priority(&p.action)));
        match victim {
            Some((i, prio)) if prio < action_priority(&pending.action) => {
                self.retry_queue.remove(i);
                self.retry_queue.push_back(*pending);
            }
            _ => {}
        }
        self.shed += 1;
        counter!("switch.controller.shed").inc();
    }

    fn enter_degraded(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.ever_degraded = true;
            counter!("switch.controller.degraded").inc();
        }
        self.quiescent_ticks = 0;
    }

    /// Drains retries due at `tick` into `out` as `(action, attempt)`
    /// pairs, preserving queue order. Also advances the degraded-flag
    /// hysteresis: after [`DEGRADED_CLEAR_TICKS`] consecutive fully
    /// quiescent calls the flag clears.
    pub fn take_due_retries(&mut self, tick: u64, out: &mut Vec<(ControlAction, u32)>) {
        out.clear();
        let n = self.retry_queue.len();
        for _ in 0..n {
            if let Some(p) = self.retry_queue.pop_front() {
                if p.due <= tick {
                    out.push((p.action, p.attempt));
                } else {
                    self.retry_queue.push_back(p);
                }
            }
        }
        if self.retry_queue.is_empty() && out.is_empty() {
            if self.degraded {
                self.quiescent_ticks += 1;
                if self.quiescent_ticks >= DEGRADED_CLEAR_TICKS {
                    self.degraded = false;
                    self.quiescent_ticks = 0;
                }
            }
        } else {
            self.quiescent_ticks = 0;
        }
    }

    /// True once the drift detector has fired since the last take; reading
    /// clears the flag. The harness reacts by warm-refitting the forest
    /// and staging the resulting transaction via [`Self::stage_ruleset`].
    pub fn take_drift_trigger(&mut self) -> bool {
        std::mem::take(&mut self.drift_pending)
    }

    /// The drift detector, when adaptation is configured.
    pub fn drift_detector(&self) -> Option<&DriftDetector> {
        self.drift.as_ref()
    }

    /// Stages a retrained ruleset transaction for delivery to the data
    /// plane. Transactions queue in staging order (= version order, since
    /// each is a delta against its predecessor's table) and deliver
    /// strictly one at a time: the data plane can only accept `v + 1`, so
    /// a later transaction must wait for every earlier one to land.
    pub fn stage_ruleset(&mut self, txn: RulesetTxn) {
        self.rulesets_staged += 1;
        counter!("switch.controller.ruleset_staged").inc();
        self.pending_rulesets.push_back(PendingRuleset { txn, attempts: 0, due: 0 });
    }

    /// The oldest staged transaction, if it is due for (re)send at `tick`.
    pub fn due_ruleset(&self, tick: u64) -> Option<&RulesetTxn> {
        self.pending_rulesets.front().filter(|p| p.due <= tick).map(|p| &p.txn)
    }

    pub fn has_pending_ruleset(&self) -> bool {
        !self.pending_rulesets.is_empty()
    }

    /// Records a failed ruleset send and schedules the next attempt with
    /// the same capped exponential backoff (+ seeded jitter) as per-flow
    /// retries. Unlike those, the transaction is never abandoned — see
    /// [`PendingRuleset`] for why that is safe and necessary.
    pub fn note_ruleset_failure(&mut self, tick: u64) {
        let Some(p) = self.pending_rulesets.front_mut() else { return };
        self.ruleset_send_failures += 1;
        counter!("switch.controller.ruleset_retry").inc();
        p.attempts = p.attempts.saturating_add(1);
        let r = self.cfg.retry;
        let shift = p.attempts.saturating_sub(1).min(62);
        let backoff = r.base_backoff_ticks.saturating_shl(shift).min(r.max_backoff_ticks).max(1);
        let jitter =
            if r.jitter_ticks > 0 { self.retry_rng.gen_range(0..=r.jitter_ticks) } else { 0 };
        p.due = tick + backoff + jitter;
    }

    /// Marks the oldest staged transaction delivered (the data plane
    /// accepted or replay-no-op'd it) and advances the queue.
    pub fn ruleset_delivered(&mut self) {
        if self.pending_rulesets.pop_front().is_some() {
            self.rulesets_delivered += 1;
            counter!("switch.controller.ruleset_delivered").inc();
        }
    }

    /// Ruleset transactions handed to [`Self::stage_ruleset`].
    pub fn rulesets_staged(&self) -> u64 {
        self.rulesets_staged
    }

    /// Staged transactions confirmed applied by the data plane.
    pub fn rulesets_delivered(&self) -> u64 {
        self.rulesets_delivered
    }

    /// Failed ruleset send attempts.
    pub fn ruleset_send_failures(&self) -> u64 {
        self.ruleset_send_failures
    }

    pub fn has_pending_retries(&self) -> bool {
        !self.retry_queue.is_empty()
    }

    pub fn pending_retries(&self) -> usize {
        self.retry_queue.len()
    }

    /// Currently degraded (shedding or exhausted retries, not yet healed).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Ever entered the degraded state during this controller's life.
    pub fn ever_degraded(&self) -> bool {
        self.ever_degraded
    }

    /// Captures the complete mutable state for later [`Self::restore_from`].
    pub fn snapshot(&self) -> ControllerSnapshot {
        let mut installed: Vec<(FiveTuple, u64)> =
            self.installed.iter().map(|(k, &v)| (*k, v)).collect();
        installed.sort_unstable_by_key(|(k, _)| *k);
        ControllerSnapshot {
            queue: self.queue.iter().copied().collect(),
            installed,
            clock: self.clock,
            digests_seen: self.digests_seen,
            digest_bytes_total: self.digest_bytes_total,
            dedup_order: self.dedup_order.iter().copied().collect(),
            retry_queue: self.retry_queue.iter().copied().collect(),
            retry_rng_state: self.retry_rng.state(),
            degraded: self.degraded,
            ever_degraded: self.ever_degraded,
            quiescent_ticks: self.quiescent_ticks,
            dup_digests: self.dup_digests,
            retries: self.retries,
            retries_exhausted: self.retries_exhausted,
            shed: self.shed,
        }
    }

    /// Resets all mutable state to `snap` (configuration is kept). The
    /// retry RNG resumes mid-stream, so jitter draws after a restore match
    /// a run that never crashed.
    pub fn restore_from(&mut self, snap: &ControllerSnapshot) {
        self.drift = self.cfg.drift.map(DriftDetector::new);
        self.drift_pending = false;
        self.pending_rulesets.clear();
        self.queue = snap.queue.iter().copied().collect();
        self.installed = snap.installed.iter().copied().collect();
        self.clock = snap.clock;
        self.digests_seen = snap.digests_seen;
        self.digest_bytes_total = snap.digest_bytes_total;
        self.dedup_order = snap.dedup_order.iter().copied().collect();
        self.dedup_seen = snap.dedup_order.iter().copied().collect();
        self.retry_queue = snap.retry_queue.iter().copied().collect();
        self.retry_rng = Rng::from_state(snap.retry_rng_state);
        self.degraded = snap.degraded;
        self.ever_degraded = snap.ever_degraded;
        self.quiescent_ticks = snap.quiescent_ticks;
        self.dup_digests = snap.dup_digests;
        self.retries = snap.retries;
        self.retries_exhausted = snap.retries_exhausted;
        self.shed = snap.shed;
    }

    /// Cold-starts a crashed controller from the data plane's installed
    /// blacklist (the authoritative survivor): membership and eviction
    /// order are rebuilt from `contents` (canonical sorted order, as
    /// returned by `DataPlane::blacklist_contents`); bandwidth counters,
    /// the dedup window, and pending retries are lost with the crash.
    pub fn rebuild_from_blacklist(&mut self, contents: &[FiveTuple]) {
        self.drift = self.cfg.drift.map(DriftDetector::new);
        self.drift_pending = false;
        self.pending_rulesets.clear();
        self.queue.clear();
        self.installed.clear();
        self.clock = 0;
        self.digests_seen = 0;
        self.digest_bytes_total = 0.0;
        self.dedup_seen.clear();
        self.dedup_order.clear();
        self.retry_queue.clear();
        self.retry_rng = Rng::seed_from_u64(self.cfg.retry.seed);
        self.degraded = false;
        self.quiescent_ticks = 0;
        for &five in contents {
            self.clock += 1;
            self.installed.insert(five, self.clock);
            if self.cfg.policy == EvictionPolicy::Fifo {
                self.queue.push_back(five);
            }
        }
    }

    /// Number of blacklist entries currently installed.
    pub fn installed_len(&self) -> usize {
        self.installed.len()
    }

    /// FIFO bookkeeping queue length (0 under LRU; under FIFO it can
    /// briefly exceed `installed_len` by tombstones awaiting compaction).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub fn digests_seen(&self) -> u64 {
        self.digests_seen
    }

    /// Digests discarded by the sequence dedup window.
    pub fn dup_digests(&self) -> u64 {
        self.dup_digests
    }

    /// Failed sends recorded (each failure counts once, including final
    /// ones that exhausted the attempt budget).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Actions abandoned after [`RetryPolicy::max_attempts`] sends.
    pub fn retries_exhausted(&self) -> u64 {
        self.retries_exhausted
    }

    /// Shedding events (retry queue at capacity).
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Control-plane bandwidth over an observation window (App. B.2
    /// reports KBps over 30 s).
    pub fn overhead_kbps(&self, window_secs: f64) -> f64 {
        assert!(window_secs > 0.0);
        self.digest_bytes_total / 1024.0 / window_secs
    }
}

/// `u64 << shift` that saturates instead of overflowing.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_flow::five_tuple::PROTO_TCP;

    fn digest(flow: u16, malicious: bool) -> Digest {
        Digest::new(FiveTuple::new(1, 2, 1000 + flow, 80, PROTO_TCP), malicious)
    }

    fn seq_digest(seq: u64, flow: u16, malicious: bool) -> SeqDigest {
        SeqDigest { seq, digest: digest(flow, malicious) }
    }

    fn cfg(cap: usize, policy: EvictionPolicy) -> ControllerConfig {
        ControllerConfig { blacklist_capacity: cap, policy, ..Default::default() }
    }

    /// Tags each digest with consecutive sequence numbers from `base` and
    /// runs them through the (sole) seq-keyed entry point.
    fn run(c: &mut Controller, base: u64, ds: &[Digest]) -> Vec<ControlAction> {
        let sds: Vec<SeqDigest> = ds
            .iter()
            .enumerate()
            .map(|(i, &d)| SeqDigest { seq: base + i as u64, digest: d })
            .collect();
        c.process_seq_digests(&sds)
    }

    #[test]
    fn benign_digest_only_clears_storage() {
        let mut c = Controller::new(cfg(10, EvictionPolicy::Fifo));
        let actions = run(&mut c, 0, &[digest(1, false)]);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ControlAction::ClearFlow(_)));
        assert_eq!(c.installed_len(), 0);
    }

    #[test]
    fn malicious_digest_installs_blacklist() {
        let mut c = Controller::new(cfg(10, EvictionPolicy::Fifo));
        let actions = run(&mut c, 0, &[digest(1, true)]);
        assert!(actions.iter().any(|a| matches!(a, ControlAction::InstallBlacklist(_))));
        assert_eq!(c.installed_len(), 1);
    }

    #[test]
    fn duplicate_installs_are_deduped() {
        let mut c = Controller::new(cfg(10, EvictionPolicy::Fifo));
        let _ = run(&mut c, 0, &[digest(1, true), digest(1, true)]);
        assert_eq!(c.installed_len(), 1);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut c = Controller::new(cfg(2, EvictionPolicy::Fifo));
        let _ = run(&mut c, 0, &[digest(1, true), digest(2, true)]);
        let actions = run(&mut c, 2, &[digest(3, true)]);
        let evicted: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ControlAction::RemoveBlacklist(f) => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![digest(1, true).five.canonical()]);
        assert_eq!(c.installed_len(), 2);
    }

    #[test]
    fn lru_refresh_protects_hot_entries() {
        let mut c = Controller::new(cfg(2, EvictionPolicy::Lru));
        let _ = run(&mut c, 0, &[digest(1, true), digest(2, true)]);
        // Refresh flow 1, then overflow: flow 2 must be the LRU victim.
        let _ = run(&mut c, 2, &[digest(1, true)]);
        let actions = run(&mut c, 3, &[digest(3, true)]);
        let evicted: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ControlAction::RemoveBlacklist(f) => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![digest(2, true).five.canonical()]);
    }

    /// Regression: under LRU the install-order queue used to grow by one
    /// entry per install and never shrink — churning many flows through a
    /// small table leaked memory linearly in trace length.
    #[test]
    fn lru_queue_stays_bounded_under_churn() {
        let mut c = Controller::new(cfg(16, EvictionPolicy::Lru));
        let mut actions = Vec::new();
        for i in 0..10_000u32 {
            let five = FiveTuple::new(i + 1, 2, 7, 80, PROTO_TCP);
            let sd = SeqDigest { seq: i as u64, digest: Digest::new(five, true) };
            c.process_seq_digests_into(&[sd], &mut actions);
        }
        assert_eq!(c.installed_len(), 16);
        assert_eq!(c.queue_len(), 0, "LRU must not accumulate queue entries");
    }

    /// FIFO's queue self-compacts: tombstones are popped during victim
    /// selection, so sustained churn keeps it at the table size.
    #[test]
    fn fifo_queue_stays_bounded_under_churn() {
        let mut c = Controller::new(cfg(16, EvictionPolicy::Fifo));
        let mut actions = Vec::new();
        for i in 0..10_000u32 {
            let five = FiveTuple::new(i + 1, 2, 7, 80, PROTO_TCP);
            let sd = SeqDigest { seq: i as u64, digest: Digest::new(five, true) };
            c.process_seq_digests_into(&[sd], &mut actions);
        }
        assert_eq!(c.installed_len(), 16);
        assert_eq!(c.queue_len(), 16);
    }

    #[test]
    fn seq_dedup_drops_duplicates_inside_window() {
        let mut c = Controller::new(cfg(10, EvictionPolicy::Fifo));
        let mut actions = Vec::new();
        c.process_seq_digests_into(
            &[seq_digest(7, 1, true), seq_digest(7, 1, true), seq_digest(8, 2, false)],
            &mut actions,
        );
        assert_eq!(c.dup_digests(), 1);
        assert_eq!(c.digests_seen(), 2, "duplicate must not touch bandwidth accounting");
        assert_eq!(c.installed_len(), 1);
    }

    #[test]
    fn seq_dedup_window_slides() {
        let mut c =
            Controller::new(ControllerConfig { dedup_window: 2, ..cfg(10, EvictionPolicy::Fifo) });
        let mut actions = Vec::new();
        c.process_seq_digests_into(
            &[seq_digest(1, 1, false), seq_digest(2, 2, false), seq_digest(3, 3, false)],
            &mut actions,
        );
        // Seq 1 has been evicted from the window — a late duplicate is
        // re-admitted (the price of a bounded window).
        c.process_seq_digests_into(&[seq_digest(1, 1, false)], &mut actions);
        assert_eq!(c.dup_digests(), 0);
        assert_eq!(c.digests_seen(), 4);
    }

    #[test]
    fn retry_backoff_grows_and_caps() {
        let mut c = Controller::new(ControllerConfig {
            retry: RetryPolicy { jitter_ticks: 0, ..RetryPolicy::default() },
            ..ControllerConfig::default()
        });
        let act = ControlAction::InstallBlacklist(digest(1, true).five);
        let mut due = Vec::new();
        // attempt=1 → backoff 1; attempt=5 → min(1<<4, 64)=16.
        c.note_send_failure(act, 1, 100);
        c.take_due_retries(100, &mut due);
        assert!(due.is_empty());
        c.take_due_retries(101, &mut due);
        assert_eq!(due, vec![(act, 2)]);
        c.note_send_failure(act, 5, 100);
        c.take_due_retries(115, &mut due);
        assert!(due.is_empty());
        c.take_due_retries(116, &mut due);
        assert_eq!(due, vec![(act, 6)]);
    }

    #[test]
    fn retries_exhaust_after_max_attempts() {
        let mut c = Controller::new(ControllerConfig::default());
        let act = ControlAction::InstallBlacklist(digest(1, true).five);
        c.note_send_failure(act, c.cfg.retry.max_attempts, 0);
        assert_eq!(c.retries_exhausted(), 1);
        assert!(!c.has_pending_retries());
        assert!(c.is_degraded());
    }

    #[test]
    fn saturated_retry_queue_sheds_lowest_priority_first() {
        let mut c = Controller::new(ControllerConfig {
            retry: RetryPolicy { queue_cap: 2, jitter_ticks: 0, ..RetryPolicy::default() },
            ..ControllerConfig::default()
        });
        let clear = ControlAction::ClearFlow(digest(1, true).five);
        let install = ControlAction::InstallBlacklist(digest(2, true).five);
        c.note_send_failure(clear, 1, 0);
        c.note_send_failure(clear, 1, 0);
        assert!(!c.is_degraded());
        // Queue full of ClearFlow: an install replaces one of them.
        c.note_send_failure(install, 1, 0);
        assert!(c.is_degraded());
        assert_eq!(c.shed(), 1);
        let mut due = Vec::new();
        c.take_due_retries(u64::MAX / 2, &mut due);
        assert!(due.iter().any(|(a, _)| *a == install), "install must survive shedding");
        // A ClearFlow arriving at a full queue of installs is itself shed.
        c.note_send_failure(install, 1, 0);
        c.note_send_failure(install, 1, 0);
        c.note_send_failure(clear, 1, 0);
        c.take_due_retries(u64::MAX / 2, &mut due);
        assert!(due.iter().all(|(a, _)| *a != clear));
    }

    #[test]
    fn degraded_flag_clears_after_quiescence() {
        let mut c = Controller::new(ControllerConfig::default());
        let act = ControlAction::InstallBlacklist(digest(1, true).five);
        c.note_send_failure(act, c.cfg.retry.max_attempts, 0);
        assert!(c.is_degraded());
        let mut due = Vec::new();
        for t in 0..DEGRADED_CLEAR_TICKS {
            assert!(c.is_degraded(), "still degraded at quiescent tick {t}");
            c.take_due_retries(t, &mut due);
        }
        assert!(!c.is_degraded());
        assert!(c.ever_degraded());
    }

    #[test]
    fn snapshot_restore_round_trips_exactly() {
        let mut c = Controller::new(cfg(4, EvictionPolicy::Lru));
        let mut actions = Vec::new();
        for i in 0..6u16 {
            c.process_seq_digests_into(&[seq_digest(i as u64, i, i % 2 == 0)], &mut actions);
        }
        c.note_send_failure(ControlAction::InstallBlacklist(digest(9, true).five), 1, 3);
        let snap = c.snapshot();

        // Diverge, then restore: state must match the snapshot again.
        c.process_seq_digests_into(&[seq_digest(100, 50, true)], &mut actions);
        let mut due = Vec::new();
        c.take_due_retries(u64::MAX / 2, &mut due);
        assert_ne!(c.snapshot(), snap);
        c.restore_from(&snap);
        assert_eq!(c.snapshot(), snap);

        // The restored controller behaves identically going forward —
        // including the jitter RNG stream.
        let mut a = Controller::new(cfg(4, EvictionPolicy::Lru));
        a.restore_from(&snap);
        let mut b = Controller::new(cfg(4, EvictionPolicy::Lru));
        b.restore_from(&snap);
        for attempt in 1..4 {
            a.note_send_failure(ControlAction::ClearFlow(digest(8, true).five), attempt, 10);
            b.note_send_failure(ControlAction::ClearFlow(digest(8, true).five), attempt, 10);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn rebuild_from_blacklist_restores_membership() {
        let mut c = Controller::new(cfg(8, EvictionPolicy::Fifo));
        let survivors: Vec<FiveTuple> =
            (0..5u16).map(|i| digest(i, true).five.canonical()).collect();
        c.rebuild_from_blacklist(&survivors);
        assert_eq!(c.installed_len(), 5);
        assert_eq!(c.queue_len(), 5);
        // Re-learning an already-installed flow refreshes, not re-installs.
        let actions = run(&mut c, 0, &[digest(0, true)]);
        assert!(actions.iter().all(|a| !matches!(a, ControlAction::InstallBlacklist(_))));
    }

    /// Paper App. B.2: 50k digests in 30 s ≈ 21 KBps for iGuard and ≈ 5.2x
    /// more for designs shipping flow features.
    #[test]
    fn digest_overhead_matches_paper_appendix() {
        let mut iguard = Controller::new(ControllerConfig::default());
        for i in 0..50_000u32 {
            let d = Digest::new(FiveTuple::new(i, 2, 1, 80, PROTO_TCP), false);
            let _ = iguard.process_seq_digests(&[SeqDigest { seq: i as u64, digest: d }]);
        }
        let kbps = iguard.overhead_kbps(30.0);
        assert!((kbps - 21.4).abs() < 1.0, "iGuard overhead {kbps} KBps");

        let mut horuseye = Controller::new(ControllerConfig {
            digest_bytes: crate::pipeline::DIGEST_BYTES_HORUSEYE,
            ..Default::default()
        });
        for i in 0..50_000u32 {
            let d = Digest::new(FiveTuple::new(i, 2, 1, 80, PROTO_TCP), false);
            let _ = horuseye.process_seq_digests(&[SeqDigest { seq: i as u64, digest: d }]);
        }
        let ratio = horuseye.overhead_kbps(30.0) / kbps;
        assert!((ratio - 5.0).abs() < 0.5, "overhead ratio {ratio} (paper: 5.2x)");
    }

    #[test]
    fn drift_trigger_surfaces_once_per_fire() {
        let drift = DriftConfig::default().with_window(50).with_min_samples(25).with_cooldown(50);
        let mut c = Controller::new(ControllerConfig {
            drift: Some(drift),
            ..cfg(1024, EvictionPolicy::Fifo)
        });
        let mut actions = Vec::new();
        let mut seq = 0u64;
        let mut feed = |c: &mut Controller, n: u64, malicious: bool| {
            for i in 0..n {
                let five = FiveTuple::new((seq + i) as u32 + 1, 2, 7, 80, PROTO_TCP);
                let sd = SeqDigest { seq: seq + i, digest: Digest::new(five, malicious) };
                c.process_seq_digests_into(&[sd], &mut actions);
            }
            seq += n;
        };
        feed(&mut c, 200, false);
        assert!(!c.take_drift_trigger(), "stable stream must not trigger");
        feed(&mut c, 200, true);
        assert!(c.take_drift_trigger(), "regime change must trigger");
        assert!(!c.take_drift_trigger(), "reading clears the flag");
        assert_eq!(c.drift_detector().expect("configured").fires(), 1);
    }

    #[test]
    fn staged_ruleset_backs_off_and_persists_until_delivered() {
        use crate::tcam::{RangeEntry, RangeTable};
        let mut c = Controller::new(ControllerConfig {
            retry: RetryPolicy { jitter_ticks: 0, ..RetryPolicy::default() },
            ..ControllerConfig::default()
        });
        assert!(c.due_ruleset(0).is_none());
        let mut table = RangeTable::new(vec![4, 4]);
        table.push(RangeEntry { fields: vec![(0, 3), (1, 2)], priority: 0 });
        let txn = RulesetTxn::full_install(1, &table, crate::pipeline::testutil::accept_all(13));
        c.stage_ruleset(txn);
        assert_eq!(c.due_ruleset(5).expect("due immediately").version, 1);

        // Failed sends back off (base 1 << n, capped), but never abandon.
        c.note_ruleset_failure(5);
        assert!(c.due_ruleset(5).is_none());
        assert!(c.due_ruleset(6).is_some());
        for t in [6, 7, 8] {
            c.note_ruleset_failure(t);
        }
        // attempt 4 → backoff 8 from tick 8.
        assert!(c.due_ruleset(15).is_none());
        assert!(c.due_ruleset(16).is_some());
        assert!(c.has_pending_ruleset());
        assert_eq!(c.ruleset_send_failures(), 4);

        c.ruleset_delivered();
        assert!(!c.has_pending_ruleset());
        assert_eq!(c.rulesets_staged(), 1);
        assert_eq!(c.rulesets_delivered(), 1);
        // Idempotent: delivering with nothing staged counts nothing.
        c.ruleset_delivered();
        assert_eq!(c.rulesets_delivered(), 1);
    }
}
