//! The control plane: digest consumption and blacklist management.
//!
//! The controller receives a digest whenever the data plane classifies a
//! flow, releases the flow's stateful storage, and — for malicious flows —
//! installs a blacklist rule, evicting old entries FIFO or LRU when the
//! table is full (paper §3.3.2). It also accounts control-plane bandwidth
//! for the App. B.2 comparison.

use std::collections::{HashMap, VecDeque};

use iguard_flow::five_tuple::FiveTuple;
use iguard_telemetry::counter;

use crate::pipeline::{ControlAction, Digest};

/// Blacklist eviction policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    Fifo,
    Lru,
}

/// Controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Maximum blacklist entries the data plane can hold.
    pub blacklist_capacity: usize,
    pub policy: EvictionPolicy,
    /// Bytes accounted per digest (13.125 for iGuard, ~65.125 for designs
    /// that ship flow features to the control plane).
    pub digest_bytes: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            blacklist_capacity: 4096,
            policy: EvictionPolicy::Fifo,
            digest_bytes: crate::pipeline::DIGEST_BYTES_IGUARD,
        }
    }
}

/// The control-plane process.
pub struct Controller {
    cfg: ControllerConfig,
    /// Install order / recency queue (front = oldest).
    queue: VecDeque<FiveTuple>,
    /// Membership + recency stamps.
    installed: HashMap<FiveTuple, u64>,
    clock: u64,
    digests_seen: u64,
    digest_bytes_total: f64,
}

impl Controller {
    pub fn new(cfg: ControllerConfig) -> Self {
        assert!(cfg.blacklist_capacity > 0, "blacklist capacity must be positive");
        Self {
            cfg,
            queue: VecDeque::new(),
            installed: HashMap::new(),
            clock: 0,
            digests_seen: 0,
            digest_bytes_total: 0.0,
        }
    }

    /// Consumes a batch of digests, producing data-plane commands.
    pub fn process_digests(&mut self, digests: &[Digest]) -> Vec<ControlAction> {
        let mut actions = Vec::new();
        self.process_digests_into(digests, &mut actions);
        actions
    }

    /// Like [`Self::process_digests`], but writes into a caller-owned
    /// buffer (cleared first) so replay loops reuse the allocation.
    pub fn process_digests_into(&mut self, digests: &[Digest], actions: &mut Vec<ControlAction>) {
        actions.clear();
        for &d in digests {
            self.digests_seen += 1;
            self.digest_bytes_total += self.cfg.digest_bytes;
            self.clock += 1;
            counter!("switch.controller.digest").inc();
            let key = d.five.canonical();
            // Always release the flow's stateful storage: the class now
            // lives in the label register / blacklist.
            actions.push(ControlAction::ClearFlow(key));
            if !d.malicious {
                continue;
            }
            if let Some(stamp) = self.installed.get_mut(&key) {
                // Already blacklisted: refresh recency for LRU.
                *stamp = self.clock;
                continue;
            }
            // Evict if full.
            if self.installed.len() >= self.cfg.blacklist_capacity {
                if let Some(victim) = self.pick_victim() {
                    self.installed.remove(&victim);
                    counter!("switch.controller.blacklist_evict").inc();
                    actions.push(ControlAction::RemoveBlacklist(victim));
                }
            }
            self.installed.insert(key, self.clock);
            self.queue.push_back(key);
            counter!("switch.controller.blacklist_install").inc();
            actions.push(ControlAction::InstallBlacklist(key));
        }
    }

    fn pick_victim(&mut self) -> Option<FiveTuple> {
        match self.cfg.policy {
            EvictionPolicy::Fifo => {
                // Pop queue entries until one is still installed.
                while let Some(cand) = self.queue.pop_front() {
                    if self.installed.contains_key(&cand) {
                        return Some(cand);
                    }
                }
                None
            }
            EvictionPolicy::Lru => {
                self.installed.iter().min_by_key(|(_, &stamp)| stamp).map(|(k, _)| *k)
            }
        }
    }

    /// Number of blacklist entries currently installed.
    pub fn installed_len(&self) -> usize {
        self.installed.len()
    }

    pub fn digests_seen(&self) -> u64 {
        self.digests_seen
    }

    /// Control-plane bandwidth over an observation window (App. B.2
    /// reports KBps over 30 s).
    pub fn overhead_kbps(&self, window_secs: f64) -> f64 {
        assert!(window_secs > 0.0);
        self.digest_bytes_total / 1024.0 / window_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iguard_flow::five_tuple::PROTO_TCP;

    fn digest(flow: u16, malicious: bool) -> Digest {
        Digest { five: FiveTuple::new(1, 2, 1000 + flow, 80, PROTO_TCP), malicious }
    }

    fn cfg(cap: usize, policy: EvictionPolicy) -> ControllerConfig {
        ControllerConfig { blacklist_capacity: cap, policy, ..Default::default() }
    }

    #[test]
    fn benign_digest_only_clears_storage() {
        let mut c = Controller::new(cfg(10, EvictionPolicy::Fifo));
        let actions = c.process_digests(&[digest(1, false)]);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], ControlAction::ClearFlow(_)));
        assert_eq!(c.installed_len(), 0);
    }

    #[test]
    fn malicious_digest_installs_blacklist() {
        let mut c = Controller::new(cfg(10, EvictionPolicy::Fifo));
        let actions = c.process_digests(&[digest(1, true)]);
        assert!(actions.iter().any(|a| matches!(a, ControlAction::InstallBlacklist(_))));
        assert_eq!(c.installed_len(), 1);
    }

    #[test]
    fn duplicate_installs_are_deduped() {
        let mut c = Controller::new(cfg(10, EvictionPolicy::Fifo));
        let _ = c.process_digests(&[digest(1, true), digest(1, true)]);
        assert_eq!(c.installed_len(), 1);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut c = Controller::new(cfg(2, EvictionPolicy::Fifo));
        let _ = c.process_digests(&[digest(1, true), digest(2, true)]);
        let actions = c.process_digests(&[digest(3, true)]);
        let evicted: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ControlAction::RemoveBlacklist(f) => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![digest(1, true).five.canonical()]);
        assert_eq!(c.installed_len(), 2);
    }

    #[test]
    fn lru_refresh_protects_hot_entries() {
        let mut c = Controller::new(cfg(2, EvictionPolicy::Lru));
        let _ = c.process_digests(&[digest(1, true), digest(2, true)]);
        // Refresh flow 1, then overflow: flow 2 must be the LRU victim.
        let _ = c.process_digests(&[digest(1, true)]);
        let actions = c.process_digests(&[digest(3, true)]);
        let evicted: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                ControlAction::RemoveBlacklist(f) => Some(*f),
                _ => None,
            })
            .collect();
        assert_eq!(evicted, vec![digest(2, true).five.canonical()]);
    }

    /// Paper App. B.2: 50k digests in 30 s ≈ 21 KBps for iGuard and ≈ 5.2x
    /// more for designs shipping flow features.
    #[test]
    fn digest_overhead_matches_paper_appendix() {
        let mut iguard = Controller::new(ControllerConfig::default());
        for i in 0..50_000u32 {
            let d = Digest { five: FiveTuple::new(i, 2, 1, 80, PROTO_TCP), malicious: false };
            let _ = iguard.process_digests(&[d]);
        }
        let kbps = iguard.overhead_kbps(30.0);
        assert!((kbps - 21.4).abs() < 1.0, "iGuard overhead {kbps} KBps");

        let mut horuseye = Controller::new(ControllerConfig {
            digest_bytes: crate::pipeline::DIGEST_BYTES_HORUSEYE,
            ..Default::default()
        });
        for i in 0..50_000u32 {
            let d = Digest { five: FiveTuple::new(i, 2, 1, 80, PROTO_TCP), malicious: false };
            let _ = horuseye.process_digests(&[d]);
        }
        let ratio = horuseye.overhead_kbps(30.0) / kbps;
        assert!((ratio - 5.0).abs() < 0.5, "overhead ratio {ratio} (paper: 5.2x)");
    }
}
