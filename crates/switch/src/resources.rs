//! A Tofino-1-like resource model (paper Table 1 and the ρ of §4.2.1).
//!
//! The numbers below are public-knowledge approximations of a Tofino 1
//! pipeline — enough structure to convert an installed iGuard deployment
//! into utilisation percentages whose *relationships* (iGuard ≤ baseline,
//! TCAM dominated by rule count, SRAM by flow-table sizing) match the
//! paper. Absolute percentages depend on these constants and are not
//! claimed to match the proprietary hardware exactly.

use iguard_flow::table::FlowTableConfig;

use crate::tcam::RangeTable;

/// Pipeline stages in the ingress pipe.
pub const STAGES: usize = 12;
/// TCAM blocks per stage.
pub const TCAM_BLOCKS_PER_STAGE: usize = 24;
/// Entries per TCAM block.
pub const TCAM_ENTRIES_PER_BLOCK: usize = 512;
/// Bits matched per TCAM block slice.
pub const TCAM_SLICE_BITS: usize = 44;
/// SRAM blocks per stage.
pub const SRAM_BLOCKS_PER_STAGE: usize = 80;
/// Bytes per SRAM block (1024 × 128-bit words).
pub const SRAM_BLOCK_BYTES: usize = 1024 * 16;
/// Stateful ALUs per stage.
pub const SALUS_PER_STAGE: usize = 4;
/// VLIW action slots per stage.
pub const VLIW_PER_STAGE: usize = 32;

/// Per-resource utilisation fractions, as reported in Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceUsage {
    pub tcam: f64,
    pub sram: f64,
    pub salu: f64,
    pub vliw: f64,
    pub stages: usize,
}

impl ResourceUsage {
    /// The memory fraction ρ fed into the §4.2.1 reward: the mean of the
    /// four utilisation fractions.
    pub fn rho(&self) -> f64 {
        ((self.tcam + self.sram + self.salu + self.vliw) / 4.0).clamp(0.0, 1.0)
    }
}

/// Describes a full deployment for resource accounting.
#[derive(Clone, Debug)]
pub struct ResourceModel {
    /// Flow-level whitelist table (13 features).
    pub fl_tcam_entries: usize,
    pub fl_key_bits: u32,
    /// Packet-level whitelist table (4 features).
    pub pl_tcam_entries: usize,
    pub pl_key_bits: u32,
    /// Blacklist exact-match capacity provisioned.
    pub blacklist_capacity: usize,
    /// Flow table configuration (register storage).
    pub flow_table: FlowTableConfig,
    /// Stateful quantities maintained per flow (one sALU-backed register
    /// array each): counters, min/max, sums of squares, timestamps, …
    pub stateful_registers: usize,
    /// Distinct actions in the pipeline (VLIW slots).
    pub actions: usize,
}

impl ResourceModel {
    /// Builds a model from the two installed whitelist tables and the
    /// stateful-storage configuration.
    pub fn for_deployment(
        fl_table: &RangeTable,
        pl_table: &RangeTable,
        flow_table: FlowTableConfig,
        blacklist_capacity: usize,
    ) -> Self {
        Self {
            fl_tcam_entries: fl_table.len(),
            fl_key_bits: fl_table.encoded_key_bits(),
            pl_tcam_entries: pl_table.len(),
            pl_key_bits: pl_table.encoded_key_bits(),
            blacklist_capacity,
            flow_table,
            // pkt count, byte count, min/max size, size sum & sum-of-squares,
            // last ts, first ts, ipd min/max, ipd sum & sum-of-squares,
            // flow label, flow id — the Fig. 4 register arrays.
            stateful_registers: 14,
            // parse, blacklist, 6 path actions, feature math, mirror,
            // digest, forward/drop.
            actions: 24,
        }
    }

    /// Evaluates utilisation against the Tofino-1-like budget.
    pub fn usage(&self) -> ResourceUsage {
        // TCAM: each entry consumes ceil(key_bits / 44) block slices.
        let fl_slices = (self.fl_key_bits as usize).div_ceil(TCAM_SLICE_BITS);
        let pl_slices = (self.pl_key_bits as usize).div_ceil(TCAM_SLICE_BITS);
        let tcam_used = self.fl_tcam_entries * fl_slices + self.pl_tcam_entries * pl_slices;
        let tcam_total = STAGES * TCAM_BLOCKS_PER_STAGE * TCAM_ENTRIES_PER_BLOCK;

        // SRAM: two hash tables of per-flow state (~64 B per slot: 13 B key,
        // feature accumulators, label) + blacklist exact-match entries
        // (16 B each) + action/overhead share.
        let slot_bytes = 64usize;
        let sram_used =
            2 * self.flow_table.slots_per_table * slot_bytes + self.blacklist_capacity * 16;
        let sram_total = STAGES * SRAM_BLOCKS_PER_STAGE * SRAM_BLOCK_BYTES;

        let salu_total = STAGES * SALUS_PER_STAGE;
        let vliw_total = STAGES * VLIW_PER_STAGE;

        ResourceUsage {
            tcam: tcam_used as f64 / tcam_total as f64,
            sram: sram_used as f64 / sram_total as f64,
            salu: self.stateful_registers as f64 * 0.67 / salu_total as f64,
            vliw: self.actions as f64 / vliw_total as f64,
            stages: STAGES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcam::{FieldSpec, RangeEntry, RangeTable};

    fn table_with(entries: usize, fields: Vec<u8>) -> RangeTable {
        let mut t = RangeTable::new(fields.clone());
        for i in 0..entries {
            t.push(RangeEntry {
                fields: fields.iter().map(|_| (i as u32, i as u32)).collect(),
                priority: i as u32,
            });
        }
        t
    }

    fn spec_bits() -> Vec<u8> {
        let _ = FieldSpec::new(16, 1.0);
        vec![16; 13]
    }

    #[test]
    fn more_rules_means_more_tcam() {
        let small = table_with(100, spec_bits());
        let large = table_with(400, spec_bits());
        let pl = table_with(50, vec![16, 8, 16, 8]);
        let cfg = FlowTableConfig::default();
        let u_small = ResourceModel::for_deployment(&small, &pl, cfg, 1024).usage();
        let u_large = ResourceModel::for_deployment(&large, &pl, cfg, 1024).usage();
        assert!(u_large.tcam > u_small.tcam);
        // Non-TCAM resources are rule-count independent.
        assert_eq!(u_large.sram, u_small.sram);
        assert_eq!(u_large.salu, u_small.salu);
        assert_eq!(u_large.vliw, u_small.vliw);
    }

    #[test]
    fn key_width_multiplies_slices() {
        // 13 × 16-bit fields = 208 bits = 5 slices of 44 bits.
        let t = table_with(100, spec_bits());
        assert_eq!(t.encoded_key_bits(), 416);
        let pl = table_with(0, vec![16, 8, 16, 8]);
        let u = ResourceModel::for_deployment(&t, &pl, FlowTableConfig::default(), 0).usage();
        let expected = 100.0 * 10.0 / (12.0 * 24.0 * 512.0);
        assert!((u.tcam - expected).abs() < 1e-12);
    }

    #[test]
    fn bigger_flow_table_means_more_sram() {
        let t = table_with(10, spec_bits());
        let pl = table_with(5, vec![16, 8, 16, 8]);
        let small = FlowTableConfig { slots_per_table: 1024, ..Default::default() };
        let large = FlowTableConfig { slots_per_table: 65536, ..Default::default() };
        let u1 = ResourceModel::for_deployment(&t, &pl, small, 1024).usage();
        let u2 = ResourceModel::for_deployment(&t, &pl, large, 1024).usage();
        assert!(u2.sram > u1.sram);
    }

    #[test]
    fn rho_is_mean_of_fractions() {
        let u = ResourceUsage { tcam: 0.2, sram: 0.1, salu: 0.3, vliw: 0.0, stages: 12 };
        assert!((u.rho() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn usage_fractions_reasonable_for_paper_scale() {
        // A deployment in the ballpark of Table 1 should land at a few
        // tens of percent at most, not saturate.
        let fl = table_with(3000, spec_bits());
        let pl = table_with(500, vec![16, 8, 16, 8]);
        let cfg = FlowTableConfig { slots_per_table: 32768, ..Default::default() };
        let u = ResourceModel::for_deployment(&fl, &pl, cfg, 4096).usage();
        assert!(u.tcam > 0.01 && u.tcam < 0.5, "tcam {}", u.tcam);
        assert!(u.sram > 0.01 && u.sram < 0.5, "sram {}", u.sram);
        assert!(u.salu > 0.0 && u.salu < 0.5, "salu {}", u.salu);
        assert!(u.vliw > 0.0 && u.vliw < 0.5, "vliw {}", u.vliw);
        assert_eq!(u.stages, 12);
    }
}
