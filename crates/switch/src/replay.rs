//! Trace replay through the emulated switch, with throughput/latency and
//! per-packet detection accounting (paper §4.2.1, App. B.1).
//!
//! ## Latency model
//! A Tofino-1 ingress pipe is a fixed-depth pipeline: per-packet latency is
//! `stages × per_stage_ns` regardless of the program. With 12 stages at
//! 44.4 ns the base latency is 532.8 ns — the figure the paper reports.
//! Blue-path packets are mirrored to the loopback port and traverse the
//! pipe twice; the reported average weighs that second pass in.
//!
//! ## Throughput model
//! The pipe forwards at line rate; capacity is consumed by offered packets
//! plus loopback copies, so the sustainable offered throughput is
//! `line_rate × offered / (offered + loopback)`. Designs that detect in
//! the control plane (HorusEye-style) additionally detour a fraction of
//! traffic through a CPU port of limited bandwidth; detoured bytes beyond
//! that bandwidth stall, capping effective throughput.

use iguard_flow::packet::Packet;
use iguard_metrics::ConfusionMatrix;

use iguard_synth::trace::Trace;

use crate::controller::Controller;
use crate::data_plane::DataPlane;
use crate::pipeline::{ControlAction, Digest, PacketVerdict, ProcessOutcome};

/// Pipeline timing constants.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    pub stages: usize,
    pub per_stage_ns: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // 12 stages × 44.4 ns = 532.8 ns, the paper's per-packet latency.
        Self { stages: 12, per_stage_ns: 44.4 }
    }
}

impl LatencyModel {
    pub fn base_ns(&self) -> f64 {
        self.stages as f64 * self.per_stage_ns
    }
}

/// Control-plane interaction model for throughput accounting.
#[derive(Clone, Copy, Debug)]
pub struct ControlPlaneModel {
    /// Fraction of offered packets detoured through the control plane for
    /// *detection* (0 for iGuard: detection is entirely in the data plane;
    /// HorusEye-style designs mirror suspicious traffic up).
    pub detour_fraction: f64,
    /// CPU-port bandwidth available to detoured traffic (Gbps).
    pub cp_port_gbps: f64,
}

impl ControlPlaneModel {
    /// iGuard: no detection detour.
    pub fn iguard() -> Self {
        Self { detour_fraction: 0.0, cp_port_gbps: 10.0 }
    }

    /// HorusEye-style: the data-plane iForest is tuned for high recall /
    /// low precision, so a large share of traffic is mirrored to the CPU
    /// port for autoencoder confirmation; the port's *effective* bandwidth
    /// after PCIe and software overheads is a few Gbps.
    pub fn control_plane_detection() -> Self {
        Self { detour_fraction: 0.5, cp_port_gbps: 4.0 }
    }
}

/// Replay output.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    pub packets: u64,
    pub bytes: u64,
    /// Trace duration (seconds of traffic time).
    pub duration_secs: f64,
    /// Offered load implied by the trace.
    pub offered_gbps: f64,
    /// Sustainable throughput under the models above.
    pub throughput_gbps: f64,
    /// Mean per-packet latency (ns), loopback passes included.
    pub avg_latency_ns: f64,
    /// Packets dropped by the pipeline.
    pub dropped: u64,
    /// Per-packet detection quality (truth = packet of malicious flow,
    /// positive = packet dropped/flagged).
    pub tp: u64,
    pub fp: u64,
    pub tn: u64,
    pub fn_: u64,
    pub digests: u64,
    /// Control-plane digest bandwidth (KBps over the trace duration).
    pub digest_kbps: f64,
    /// Loopback copies generated.
    pub loopback: u64,
}

impl ReplayReport {
    pub fn confusion(&self) -> ConfusionMatrix {
        ConfusionMatrix { tp: self.tp, fp: self.fp, tn: self.tn, fn_: self.fn_ }
    }
}

/// Replay configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Link rate the trace is replayed at (the paper uses a 40 Gbps link).
    pub line_rate_gbps: f64,
    pub latency: LatencyModel,
    pub control_plane: ControlPlaneModel,
    /// Serialise each packet to wire bytes and re-parse it before
    /// processing — exercises the full parser path (slower).
    pub exercise_wire: bool,
    /// Packets handed to [`DataPlane::process_batch`] per call. The
    /// controller drains digests and feeds actions back *between* batches,
    /// so this is also the feedback granularity: 1 (the default) reproduces
    /// per-packet control feedback; larger batches let sharded backends
    /// parallelise but delay blacklist installs by up to a batch.
    pub batch_size: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            line_rate_gbps: 40.0,
            latency: LatencyModel::default(),
            control_plane: ControlPlaneModel::iguard(),
            exercise_wire: false,
            batch_size: 1,
        }
    }
}

impl ReplayConfig {
    /// Builder: replay link rate in Gbps.
    pub fn with_line_rate_gbps(mut self, gbps: f64) -> Self {
        self.line_rate_gbps = gbps;
        self
    }

    /// Builder: pipeline timing model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder: control-plane interaction model.
    pub fn with_control_plane(mut self, cp: ControlPlaneModel) -> Self {
        self.control_plane = cp;
        self
    }

    /// Builder: round-trip packets through wire bytes before processing.
    pub fn with_exercise_wire(mut self, on: bool) -> Self {
        self.exercise_wire = on;
        self
    }

    /// Builder: data-plane batch size (also the controller feedback
    /// granularity); clamped to ≥ 1.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }
}

/// Replays a labelled trace through a [`DataPlane`] + controller.
///
/// Per-packet ground truth is "belongs to a malicious flow"; a detection
/// is "the pipeline dropped (or flagged) the packet". This is the
/// per-packet metric of §4.2.1. Generic over the backend: the serial
/// [`crate::pipeline::Pipeline`] and the parallel
/// [`crate::sharded::ShardedPipeline`] replay identically (including
/// through `&mut dyn DataPlane`).
pub fn replay<D: DataPlane + ?Sized>(
    trace: &Trace,
    data_plane: &mut D,
    controller: &mut Controller,
    cfg: &ReplayConfig,
) -> ReplayReport {
    let mut report = ReplayReport::default();
    let mut latency_total = 0.0f64;
    let batch_size = cfg.batch_size.max(1);
    // All hot-loop buffers are allocated once and reused across batches.
    let mut batch: Vec<Packet> = Vec::with_capacity(batch_size);
    let mut outcomes: Vec<ProcessOutcome> = Vec::with_capacity(batch_size);
    let mut digest_buf: Vec<Digest> = Vec::new();
    let mut actions: Vec<ControlAction> = Vec::new();
    let n = trace.packets.len();
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        batch.clear();
        for pkt in &trace.packets[start..end] {
            if cfg.exercise_wire {
                let bytes = pkt.to_bytes();
                batch.push(
                    Packet::from_bytes(pkt.ts_ns, &bytes)
                        .expect("self-generated packet must parse"),
                );
            } else {
                batch.push(*pkt);
            }
        }
        data_plane.process_batch(&batch, &mut outcomes);
        debug_assert_eq!(outcomes.len(), batch.len());
        for ((outcome, pkt), &truth) in outcomes.iter().zip(&batch).zip(&trace.labels[start..end]) {
            report.packets += 1;
            report.bytes += pkt.wire_len as u64;
            let flagged = outcome.verdict == PacketVerdict::Drop;
            if flagged {
                report.dropped += 1;
            }
            match (truth, flagged) {
                (true, true) => report.tp += 1,
                (true, false) => report.fn_ += 1,
                (false, true) => report.fp += 1,
                (false, false) => report.tn += 1,
            }
            let passes = if outcome.mirrored { 2.0 } else { 1.0 };
            latency_total += passes * cfg.latency.base_ns();
            if outcome.mirrored {
                report.loopback += 1;
            }
        }
        // Controller runs continuously alongside the data plane: digests
        // drain (in arrival order) and actions apply between batches.
        digest_buf.clear();
        data_plane.drain_digests_into(&mut digest_buf);
        if !digest_buf.is_empty() {
            report.digests += digest_buf.len() as u64;
            controller.process_digests_into(&digest_buf, &mut actions);
            for &action in actions.iter() {
                data_plane.apply(action);
            }
        }
        start = end;
    }
    report.duration_secs = trace.duration_secs().max(1e-9);
    report.avg_latency_ns = latency_total / report.packets.max(1) as f64;
    report.offered_gbps = report.bytes as f64 * 8.0 / report.duration_secs / 1e9;

    // Throughput: loopback copies consume pipe slots; control-plane
    // detours are capped by the CPU port.
    let total_slots = (report.packets + report.loopback) as f64;
    let pipe_share = report.packets as f64 / total_slots.max(1.0);
    let mut throughput = cfg.line_rate_gbps * pipe_share;
    let cp = cfg.control_plane;
    if cp.detour_fraction > 0.0 {
        let detoured = throughput * cp.detour_fraction;
        let passed = throughput - detoured + detoured.min(cp.cp_port_gbps);
        throughput = passed.min(cfg.line_rate_gbps);
    }
    report.throughput_gbps = throughput.min(cfg.line_rate_gbps);
    report.digest_kbps = controller.overhead_kbps(report.duration_secs);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use iguard_core::rules::{Hypercube, RuleSet};
    use iguard_flow::table::FlowTableConfig;
    use iguard_runtime::rng::Rng;
    use iguard_synth::attacks::Attack;
    use iguard_synth::benign::benign_trace;

    fn accept_all(dim: usize) -> RuleSet {
        RuleSet {
            bounds: vec![(0.0, 1.0); dim],
            whitelist: vec![Hypercube {
                lo: vec![f32::NEG_INFINITY; dim],
                hi: vec![f32::INFINITY; dim],
            }],
            total_regions: 1,
        }
    }

    /// FL whitelist benign iff std of IPD (feature 10) above a floor —
    /// flood tooling is machine-regular, benign jitter is not.
    fn fl_ipd_jitter_above(floor: f32) -> RuleSet {
        let mut lo = vec![f32::NEG_INFINITY; 13];
        let hi = vec![f32::INFINITY; 13];
        lo[10] = floor;
        RuleSet {
            bounds: vec![(0.0, 2000.0); 13],
            whitelist: vec![Hypercube { lo, hi }],
            total_regions: 2,
        }
    }

    fn pipeline(fl: RuleSet) -> Pipeline {
        Pipeline::new(
            PipelineConfig {
                flow_table: FlowTableConfig {
                    slots_per_table: 8192,
                    pkt_threshold: 4,
                    ..Default::default()
                },
                drop_malicious: true,
                log_compress: false,
            },
            fl,
            accept_all(4),
        )
    }

    #[test]
    fn benign_trace_mostly_forwarded() {
        let mut rng = Rng::seed_from_u64(1);
        let trace = benign_trace(150, 5.0, &mut rng);
        let mut p = pipeline(accept_all(13));
        let mut c = Controller::new(ControllerConfig::default());
        let r = replay(&trace, &mut p, &mut c, &ReplayConfig::default());
        assert_eq!(r.packets as usize, trace.len());
        assert_eq!(r.fp, 0, "accept-all whitelist must not drop benign");
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn flood_attack_blocked_and_blacklisted() {
        let mut rng = Rng::seed_from_u64(2);
        let benign = benign_trace(100, 5.0, &mut rng);
        let attack = Attack::UdpDdos.trace(30, 5.0, &mut rng);
        let trace = iguard_synth::trace::Trace::merge(vec![benign, attack]);
        let mut p = pipeline(fl_ipd_jitter_above(0.0008));
        let mut c = Controller::new(ControllerConfig::default());
        let r = replay(&trace, &mut p, &mut c, &ReplayConfig::default());
        let cm = r.confusion();
        assert!(cm.recall() > 0.8, "recall {} too low", cm.recall());
        assert!(p.blacklist_len() > 0, "malicious flows should be blacklisted");
        assert!(r.digests > 0);
    }

    #[test]
    fn latency_base_is_532_8ns() {
        let m = LatencyModel::default();
        assert!((m.base_ns() - 532.8).abs() < 1e-9);
    }

    #[test]
    fn loopback_raises_avg_latency() {
        let mut rng = Rng::seed_from_u64(3);
        let trace = benign_trace(100, 5.0, &mut rng);
        let mut p = pipeline(accept_all(13));
        let mut c = Controller::new(ControllerConfig::default());
        let r = replay(&trace, &mut p, &mut c, &ReplayConfig::default());
        assert!(r.avg_latency_ns >= 532.8);
        assert!(r.avg_latency_ns < 2.0 * 532.8);
        assert!(r.loopback > 0);
    }

    #[test]
    fn data_plane_throughput_beats_control_plane_detour() {
        let mut rng = Rng::seed_from_u64(4);
        let trace = benign_trace(200, 2.0, &mut rng);
        let mk_report = |cp: ControlPlaneModel| {
            let mut p = pipeline(accept_all(13));
            let mut c = Controller::new(ControllerConfig::default());
            let cfg = ReplayConfig { control_plane: cp, ..Default::default() };
            replay(&trace, &mut p, &mut c, &cfg)
        };
        let iguard = mk_report(ControlPlaneModel::iguard());
        let horuseye = mk_report(ControlPlaneModel::control_plane_detection());
        assert!(
            iguard.throughput_gbps > 1.4 * horuseye.throughput_gbps,
            "iGuard {} vs control-plane {}",
            iguard.throughput_gbps,
            horuseye.throughput_gbps
        );
        // This synthetic mix has short flows (frequent blue-path mirrors);
        // the App. B.1 bench uses long flows and lands near line rate.
        assert!(iguard.throughput_gbps > 30.0, "iGuard throughput {}", iguard.throughput_gbps);
    }

    #[test]
    fn wire_exercise_is_lossless() {
        let mut rng = Rng::seed_from_u64(5);
        let trace = benign_trace(40, 1.0, &mut rng);
        let run = |wire: bool| {
            let mut p = pipeline(accept_all(13));
            let mut c = Controller::new(ControllerConfig::default());
            let cfg = ReplayConfig { exercise_wire: wire, ..Default::default() };
            replay(&trace, &mut p, &mut c, &cfg)
        };
        let direct = run(false);
        let parsed = run(true);
        assert_eq!(direct.packets, parsed.packets);
        assert_eq!(direct.dropped, parsed.dropped);
        assert_eq!(direct.tp, parsed.tp);
    }
}
