//! Trace replay through the emulated switch, with throughput/latency and
//! per-packet detection accounting (paper §4.2.1, App. B.1).
//!
//! ## Latency model
//! A Tofino-1 ingress pipe is a fixed-depth pipeline: per-packet latency is
//! `stages × per_stage_ns` regardless of the program. With 12 stages at
//! 44.4 ns the base latency is 532.8 ns — the figure the paper reports.
//! Blue-path packets are mirrored to the loopback port and traverse the
//! pipe twice; the reported average weighs that second pass in.
//!
//! ## Throughput model
//! The pipe forwards at line rate; capacity is consumed by offered packets
//! plus loopback copies, so the sustainable offered throughput is
//! `line_rate × offered / (offered + loopback)`. Designs that detect in
//! the control plane (HorusEye-style) additionally detour a fraction of
//! traffic through a CPU port of limited bandwidth; detoured bytes beyond
//! that bandwidth stall, capping effective throughput.
//!
//! ## Batching
//! Replay feeds the data plane through [`DataPlane::process_batch`] in
//! `ReplayConfig::batch_size` slices — the backend's columnar
//! (structure-of-arrays) hot path. Verdicts, digests, and counters are
//! byte-identical at every batch size (batch 1 degenerates to per-packet
//! processing), so `batch_size` is purely a throughput knob; larger
//! batches amortise feature extraction and index probes across rows.

use std::collections::HashMap;

use iguard_core::error::IguardError;
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::Packet;
use iguard_metrics::ConfusionMatrix;
use iguard_runtime::{ChannelKind, FaultPlan};

use iguard_synth::trace::Trace;

use crate::channel::{ActionChannel, DigestChannel};
use crate::controller::{Controller, ControllerSnapshot};
use crate::data_plane::DataPlane;
use crate::pipeline::{ControlAction, PacketVerdict, ProcessOutcome, SeqDigest};
use crate::ruleset::RulesetTxn;

/// Pipeline timing constants.
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    pub stages: usize,
    pub per_stage_ns: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // 12 stages × 44.4 ns = 532.8 ns, the paper's per-packet latency.
        Self { stages: 12, per_stage_ns: 44.4 }
    }
}

impl LatencyModel {
    pub fn base_ns(&self) -> f64 {
        self.stages as f64 * self.per_stage_ns
    }
}

/// Control-plane interaction model for throughput accounting.
#[derive(Clone, Copy, Debug)]
pub struct ControlPlaneModel {
    /// Fraction of offered packets detoured through the control plane for
    /// *detection* (0 for iGuard: detection is entirely in the data plane;
    /// HorusEye-style designs mirror suspicious traffic up).
    pub detour_fraction: f64,
    /// CPU-port bandwidth available to detoured traffic (Gbps).
    pub cp_port_gbps: f64,
}

impl ControlPlaneModel {
    /// iGuard: no detection detour.
    pub fn iguard() -> Self {
        Self { detour_fraction: 0.0, cp_port_gbps: 10.0 }
    }

    /// HorusEye-style: the data-plane iForest is tuned for high recall /
    /// low precision, so a large share of traffic is mirrored to the CPU
    /// port for autoencoder confirmation; the port's *effective* bandwidth
    /// after PCIe and software overheads is a few Gbps.
    pub fn control_plane_detection() -> Self {
        Self { detour_fraction: 0.5, cp_port_gbps: 4.0 }
    }
}

/// Replay output.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayReport {
    pub packets: u64,
    pub bytes: u64,
    /// Trace duration (seconds of traffic time).
    pub duration_secs: f64,
    /// Offered load implied by the trace.
    pub offered_gbps: f64,
    /// Sustainable throughput under the models above.
    pub throughput_gbps: f64,
    /// Mean per-packet latency (ns), loopback passes included.
    pub avg_latency_ns: f64,
    /// Packets dropped by the pipeline.
    pub dropped: u64,
    /// Per-packet detection quality (truth = packet of malicious flow,
    /// positive = packet dropped/flagged).
    pub tp: u64,
    pub fp: u64,
    pub tn: u64,
    pub fn_: u64,
    pub digests: u64,
    /// Control-plane digest bandwidth (KBps over the trace duration).
    pub digest_kbps: f64,
    /// Loopback copies generated.
    pub loopback: u64,
    // --- Chaos observability (all zero/false in fault-free replay) ---
    /// Digests lost in transit (sampled drops + outage losses).
    pub chan_dropped: u64,
    /// Extra digest copies injected by the channel.
    pub chan_duplicated: u64,
    /// Adjacent digest pairs swapped at delivery.
    pub chan_reordered: u64,
    /// Digests held back at least one tick.
    pub chan_delayed: u64,
    /// Controller→data-plane sends that failed (first attempts + retries).
    pub action_failures: u64,
    /// Failed sends recorded for retry.
    pub retries: u64,
    /// Actions abandoned after the retry budget.
    pub retries_exhausted: u64,
    /// Retry-queue shedding events.
    pub shed: u64,
    /// Digests discarded by the controller's sequence dedup window.
    pub dup_digests: u64,
    /// Whether the controller ever entered the degraded state.
    pub degraded: bool,
    /// Recovery latency after the last scripted outage heals, in packets
    /// (ticks from heal to the last successful install × batch size).
    pub recovery_packets: u64,
    /// Extra control-loop ticks run after the trace to drain in-flight
    /// work (0 when the loop was already quiescent).
    pub flush_ticks: u64,
    /// Digests re-derived from resident flow labels by resync sweeps.
    pub resync_digests: u64,
    /// Whitelist-index lookups performed during this replay (FL + PL;
    /// delta over the backend's counters, so reused backends report only
    /// this replay's work).
    pub wl_lookups: u64,
    /// Lookups that matched a whitelist rule.
    pub wl_hits: u64,
    /// Ruleset transactions confirmed applied by the data plane (each is
    /// one hitless epoch flip).
    pub ruleset_swaps: u64,
    /// Ruleset delivery attempts that failed in transit and were backed
    /// off for re-send.
    pub ruleset_retries: u64,
}

impl ReplayReport {
    pub fn confusion(&self) -> ConfusionMatrix {
        ConfusionMatrix { tp: self.tp, fp: self.fp, tn: self.tn, fn_: self.fn_ }
    }
}

/// One mitigated flow's timeline: first truth-malicious packet seen →
/// blacklist rule live on the data plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MitigationRecord {
    /// Canonical key of the mitigated flow.
    pub five: FiveTuple,
    /// Global arrival index of the flow's first truth-malicious packet.
    pub first_seen_seq: u64,
    /// Replay tick that processed that packet.
    pub first_seen_tick: u64,
    /// Tick whose control phase landed the blacklist install.
    pub installed_tick: u64,
    /// Truth-malicious packets of this flow the data plane had to judge
    /// without a blacklist rule — the flow's exposure, in packets.
    pub packets_before_install: u64,
    /// Phase index of the first malicious digest delivered for this flow
    /// ([`crate::pipeline::FINAL_PHASE`] when the single-shot threshold,
    /// an idle timeout, or a label resync decided it).
    pub deciding_phase: u8,
}

impl MitigationRecord {
    /// Time to mitigation in replay ticks (0 = installed within the same
    /// batch's control phase).
    pub fn ticks_to_mitigation(&self) -> u64 {
        self.installed_tick - self.first_seen_tick
    }
}

/// In-flight exposure accounting of one not-yet-mitigated flow.
#[derive(Clone, Copy, Debug)]
struct PendingMitigation {
    first_seen_seq: u64,
    first_seen_tick: u64,
    packets: u64,
    installed: bool,
    /// Phase of the first delivered malicious digest (first-wins; `None`
    /// until one arrives).
    phase: Option<u8>,
}

/// Per-flow time-to-mitigation log, threaded through the replay
/// digest/action loop by [`replay_chaos_traced`]. The replay loop notes
/// every truth-malicious packet; the control loop finalises a record the
/// moment the flow's blacklist install lands on the data plane. Records
/// accumulate in install order — a deterministic order, since installs
/// are driven by the seq-merged digest stream — so the log is
/// byte-comparable across backends, shard counts, and worker counts.
#[derive(Clone, Debug, Default)]
pub struct MitigationLog {
    flows: HashMap<FiveTuple, PendingMitigation>,
    /// Finalised records, in blacklist-install order.
    pub records: Vec<MitigationRecord>,
}

impl MitigationLog {
    /// Notes one truth-malicious packet of `five` (canonical key).
    fn note_malicious(&mut self, five: FiveTuple, seq: u64, tick: u64) {
        let p = self.flows.entry(five).or_insert(PendingMitigation {
            first_seen_seq: seq,
            first_seen_tick: tick,
            packets: 0,
            installed: false,
            phase: None,
        });
        if !p.installed {
            p.packets += 1;
        }
    }

    /// A malicious digest for `five` (canonical key) was delivered to the
    /// controller, decided at `phase`. First delivery wins — the digest
    /// stream is seq-merged, so "first" is deterministic across backends
    /// and shard/worker counts. Flows never seen truth-malicious
    /// (controller false positives) are skipped, like in
    /// [`MitigationLog::note_install`].
    fn note_digest_phase(&mut self, five: FiveTuple, phase: u8) {
        let Some(p) = self.flows.get_mut(&five) else { return };
        if p.phase.is_none() {
            p.phase = Some(phase);
        }
    }

    /// A blacklist install for `five` (canonical key) just landed.
    fn note_install(&mut self, five: FiveTuple, tick: u64) {
        // Installs for flows never seen as truth-malicious (controller
        // false positives) carry no mitigation timeline; skip them.
        let Some(p) = self.flows.get_mut(&five) else { return };
        if p.installed {
            return;
        }
        p.installed = true;
        self.records.push(MitigationRecord {
            five,
            first_seen_seq: p.first_seen_seq,
            first_seen_tick: p.first_seen_tick,
            installed_tick: tick,
            packets_before_install: p.packets,
            deciding_phase: p.phase.unwrap_or(crate::pipeline::FINAL_PHASE),
        });
    }

    /// Truth-malicious flows that never got a blacklist rule (undetected,
    /// or their install was still in flight when replay ended).
    pub fn unmitigated(&self) -> usize {
        self.flows.values().filter(|p| !p.installed).count()
    }

    /// Sorted per-flow exposure in packets — the time-to-mitigation CDF's
    /// sample set (packet axis).
    pub fn ttm_packets_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.records.iter().map(|r| r.packets_before_install).collect();
        v.sort_unstable();
        v
    }

    /// Sorted per-flow time to mitigation in replay ticks.
    pub fn ttm_ticks_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.records.iter().map(|r| r.ticks_to_mitigation()).collect();
        v.sort_unstable();
        v
    }

    /// Per-deciding-phase exposure CDF samples: `(phase, sorted packet
    /// exposures)` in ascending phase order, with
    /// [`crate::pipeline::FINAL_PHASE`] (single-shot verdicts) last.
    pub fn ttm_packets_by_phase(&self) -> Vec<(u8, Vec<u64>)> {
        let mut by_phase: std::collections::BTreeMap<u8, Vec<u64>> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            by_phase.entry(r.deciding_phase).or_default().push(r.packets_before_install);
        }
        by_phase
            .into_iter()
            .map(|(p, mut v)| {
                v.sort_unstable();
                (p, v)
            })
            .collect()
    }
}

/// Replay configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Link rate the trace is replayed at (the paper uses a 40 Gbps link).
    pub line_rate_gbps: f64,
    pub latency: LatencyModel,
    pub control_plane: ControlPlaneModel,
    /// Serialise each packet to wire bytes and re-parse it before
    /// processing — exercises the full parser path (slower).
    pub exercise_wire: bool,
    /// Packets handed to [`DataPlane::process_batch`] per call. The
    /// controller drains digests and feeds actions back *between* batches,
    /// so this is also the feedback granularity: 1 (the default) reproduces
    /// per-packet control feedback; larger batches let sharded backends
    /// parallelise but delay blacklist installs by up to a batch.
    pub batch_size: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            line_rate_gbps: 40.0,
            latency: LatencyModel::default(),
            control_plane: ControlPlaneModel::iguard(),
            exercise_wire: false,
            batch_size: 1,
        }
    }
}

iguard_runtime::builder_setters! { ReplayConfig =>
    /// Builder: replay link rate in Gbps.
    with_line_rate_gbps => line_rate_gbps: f64,
    /// Builder: pipeline timing model.
    with_latency => latency: LatencyModel,
    /// Builder: control-plane interaction model.
    with_control_plane => control_plane: ControlPlaneModel,
    /// Builder: round-trip packets through wire bytes before processing.
    with_exercise_wire => exercise_wire: bool,
}

impl ReplayConfig {
    /// Builder: data-plane batch size (also the controller feedback
    /// granularity); clamped to ≥ 1.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        self.batch_size = n.max(1);
        self
    }
}

/// When and how a simulated controller crash recovers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashRecovery {
    /// Restore the last [`Controller::snapshot`] taken by the checkpoint
    /// schedule (a pristine controller if none was taken yet).
    RestoreCheckpoint,
    /// Cold-start from the data plane's installed blacklist — the
    /// authoritative state that survives a control-plane crash.
    RebuildFromDataPlane,
}

/// A scripted controller crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Tick at whose start the controller's in-memory state is lost.
    pub at_tick: u64,
    pub recovery: CrashRecovery,
}

/// Chaos parameters for [`replay_chaos`]: the channel fault plan plus the
/// recovery machinery exercised against it. The default is the ideal
/// loop — no faults, no resync, unlimited TCAM — under which
/// [`replay_chaos`] is bit-identical to the fault-free [`replay`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    pub plan: FaultPlan,
    /// Every `n` ticks the controller asks the data plane to re-derive
    /// digests from resident labeled flows, recovering classifications
    /// whose digests were lost in transit. `None` disables resync.
    pub resync_interval: Option<u64>,
    /// Every `n` ticks the controller snapshots itself (the state a
    /// [`CrashRecovery::RestoreCheckpoint`] crash falls back to).
    pub checkpoint_interval: Option<u64>,
    pub crash: Option<CrashSpec>,
    /// Scripted ruleset swaps: at the start of each named tick the
    /// transaction is staged on the controller — as if a drift-triggered
    /// retrain had just completed — and delivery then rides the fallible
    /// action channel with capped backoff until the data plane accepts
    /// it. Lets chaos tests exercise swap-under-fault convergence without
    /// running a retrain in the loop.
    pub ruleset_swaps: Vec<(u64, RulesetTxn)>,
    /// Hardware blacklist budget enforced by the action channel; installs
    /// beyond it fail with `TcamFull`.
    pub tcam_capacity: usize,
    /// Upper bound on post-trace control-loop ticks used to drain delayed
    /// digests, pending retries and resync stragglers.
    pub max_flush_ticks: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            plan: FaultPlan::none(),
            resync_interval: None,
            checkpoint_interval: None,
            crash: None,
            ruleset_swaps: Vec::new(),
            tcam_capacity: usize::MAX,
            max_flush_ticks: 1024,
        }
    }
}

iguard_runtime::builder_setters! { ChaosConfig =>
    /// Builder: channel fault plan.
    with_plan => plan: FaultPlan,
    /// Builder: hardware blacklist (TCAM) capacity.
    with_tcam_capacity => tcam_capacity: usize,
    /// Builder: post-trace flush budget in ticks.
    with_max_flush_ticks => max_flush_ticks: u64,
}

impl ChaosConfig {
    /// Builder: resync sweep interval in ticks.
    pub fn with_resync_interval(mut self, ticks: u64) -> Self {
        assert!(ticks > 0, "resync interval must be positive");
        self.resync_interval = Some(ticks);
        self
    }

    /// Builder: controller checkpoint interval in ticks.
    pub fn with_checkpoint_interval(mut self, ticks: u64) -> Self {
        assert!(ticks > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = Some(ticks);
        self
    }

    /// Builder: scripted controller crash.
    pub fn with_crash(mut self, at_tick: u64, recovery: CrashRecovery) -> Self {
        self.crash = Some(CrashSpec { at_tick, recovery });
        self
    }

    /// Builder: stage `txn` on the controller at the start of `at_tick`.
    /// May be called repeatedly; swaps are staged in tick order.
    pub fn with_ruleset_swap(mut self, at_tick: u64, txn: RulesetTxn) -> Self {
        self.ruleset_swaps.push((at_tick, txn));
        self
    }
}

/// Replays a labelled trace through a [`DataPlane`] + controller.
///
/// Per-packet ground truth is "belongs to a malicious flow"; a detection
/// is "the pipeline dropped (or flagged) the packet". This is the
/// per-packet metric of §4.2.1. Generic over the backend: the serial
/// [`crate::pipeline::Pipeline`] and the parallel
/// [`crate::sharded::ShardedPipeline`] replay identically (including
/// through `&mut dyn DataPlane`).
///
/// Equivalent to [`replay_chaos`] with the default (ideal) [`ChaosConfig`]
/// — the channels take their no-draw pass-through paths, so this is
/// bit-identical to the pre-chaos replay loop.
pub fn replay<D: DataPlane + ?Sized>(
    trace: &Trace,
    data_plane: &mut D,
    controller: &mut Controller,
    cfg: &ReplayConfig,
) -> ReplayReport {
    replay_chaos(trace, data_plane, controller, cfg, &ChaosConfig::default())
}

/// Mutable control-loop state threaded through the per-tick step.
struct ControlLoop {
    digest_chan: DigestChannel,
    action_chan: ActionChannel,
    seq_buf: Vec<SeqDigest>,
    delivered: Vec<SeqDigest>,
    actions: Vec<ControlAction>,
    due: Vec<(ControlAction, u32)>,
    resync_digests: u64,
    last_install_tick: Option<u64>,
}

impl ControlLoop {
    /// One control-plane tick: drain data-plane digests through the lossy
    /// channel, process deliveries, send resulting actions (queueing
    /// failures for retry), and re-send due retries. `do_resync` adds a
    /// label-resync sweep to this tick's offered digests.
    /// Returns whether the tick moved anything (digests offered or
    /// delivered, retries re-sent) — the flush phase's convergence signal.
    fn tick<D: DataPlane + ?Sized>(
        &mut self,
        dp: &mut D,
        controller: &mut Controller,
        tick: u64,
        do_resync: bool,
        report: &mut ReplayReport,
        mut mitigation: Option<&mut MitigationLog>,
    ) -> bool {
        self.seq_buf.clear();
        dp.drain_seq_digests_into(&mut self.seq_buf);
        report.digests += self.seq_buf.len() as u64;
        if do_resync {
            let before = self.seq_buf.len();
            dp.resync_labeled_into(&mut self.seq_buf);
            self.resync_digests += (self.seq_buf.len() - before) as u64;
        }
        if !self.seq_buf.is_empty() {
            self.digest_chan.offer(tick, &self.seq_buf);
        }
        self.digest_chan.deliver_into(tick, &mut self.delivered);
        if let Some(m) = mitigation.as_deref_mut() {
            // Attribute each flow's verdict to the phase of its first
            // *delivered* malicious digest — delivery is what drives the
            // install, and the delivered stream is seq-merged, so the
            // attribution is deterministic.
            for sd in &self.delivered {
                if sd.digest.malicious {
                    m.note_digest_phase(sd.digest.five.canonical(), sd.digest.phase);
                }
            }
        }
        controller.process_seq_digests_into(&self.delivered, &mut self.actions);
        for i in 0..self.actions.len() {
            let action = self.actions[i];
            self.send(dp, controller, action, 1, tick, report, mitigation.as_deref_mut());
        }
        controller.take_due_retries(tick, &mut self.due);
        for i in 0..self.due.len() {
            let (action, attempt) = self.due[i];
            self.send(dp, controller, action, attempt, tick, report, mitigation.as_deref_mut());
        }
        // Ruleset lifecycle: a staged (drift-retrained or scripted)
        // transaction rides the same fallible channel as per-flow
        // actions. Failures back off with the controller's retry policy;
        // the transaction is never abandoned, so a healed channel always
        // converges to the retrained generation.
        let mut swapped = false;
        if let Some(txn) = controller.due_ruleset(tick).cloned() {
            match self.action_chan.send_ruleset(dp, &txn, tick) {
                Ok(()) => {
                    controller.ruleset_delivered();
                    swapped = true;
                }
                Err(_) => controller.note_ruleset_failure(tick),
            }
        }
        !self.seq_buf.is_empty() || !self.delivered.is_empty() || !self.due.is_empty() || swapped
    }

    fn send<D: DataPlane + ?Sized>(
        &mut self,
        dp: &mut D,
        controller: &mut Controller,
        action: ControlAction,
        attempt: u32,
        tick: u64,
        report: &mut ReplayReport,
        mitigation: Option<&mut MitigationLog>,
    ) {
        match self.action_chan.send(dp, action, tick) {
            Ok(()) => {
                if let ControlAction::InstallBlacklist(five) = action {
                    self.last_install_tick = Some(tick);
                    if let Some(m) = mitigation {
                        m.note_install(five.canonical(), tick);
                    }
                }
            }
            Err(_) => {
                report.action_failures += 1;
                controller.note_send_failure(action, attempt, tick);
            }
        }
    }

    /// Work still owed to the loop: digests in transit, queued retries,
    /// or an undelivered ruleset transaction.
    fn has_outstanding(&self, controller: &Controller) -> bool {
        self.digest_chan.has_in_flight()
            || controller.has_pending_retries()
            || controller.has_pending_ruleset()
    }
}

/// Simulated controller crash: the in-memory state is gone; rebuild it
/// from the chosen survivor.
fn recover<D: DataPlane + ?Sized>(
    controller: &mut Controller,
    dp: &D,
    recovery: CrashRecovery,
    checkpoint: Option<&ControllerSnapshot>,
) {
    match recovery {
        CrashRecovery::RestoreCheckpoint => match checkpoint {
            Some(snap) => controller.restore_from(snap),
            // No checkpoint taken yet: recover to a pristine controller.
            None => controller.rebuild_from_blacklist(&[]),
        },
        CrashRecovery::RebuildFromDataPlane => {
            controller.rebuild_from_blacklist(&dp.blacklist_contents());
        }
    }
}

/// [`replay`] with deterministic fault injection on the control loop.
///
/// Each data-plane batch is one control-loop *tick*: digests drained from
/// the backend ride a [`DigestChannel`] governed by `chaos.plan`, the
/// controller processes whatever arrives (dedup'd on sequence tags), and
/// its actions go back over an [`ActionChannel`] whose failures feed the
/// controller's retry queue. After the trace ends the loop keeps ticking
/// — bounded by `chaos.max_flush_ticks` — until delayed digests, retries
/// and resync sweeps drain, so eventual convergence is observable in the
/// returned report.
pub fn replay_chaos<D: DataPlane + ?Sized>(
    trace: &Trace,
    data_plane: &mut D,
    controller: &mut Controller,
    cfg: &ReplayConfig,
    chaos: &ChaosConfig,
) -> ReplayReport {
    replay_chaos_traced(trace, data_plane, controller, cfg, chaos, None)
}

/// [`replay_chaos`] that additionally fills a per-flow
/// [`MitigationLog`]: every truth-malicious packet is noted against its
/// flow, and the control loop stamps the tick at which the flow's
/// blacklist install lands. `None` disables the tracking entirely (no
/// per-packet map work), making this a drop-in superset of
/// [`replay_chaos`].
pub fn replay_chaos_traced<D: DataPlane + ?Sized>(
    trace: &Trace,
    data_plane: &mut D,
    controller: &mut Controller,
    cfg: &ReplayConfig,
    chaos: &ChaosConfig,
    mitigation: Option<&mut MitigationLog>,
) -> ReplayReport {
    // Infallible convenience over the checked loop: the only fallible
    // step is the wire round-trip of `exercise_wire`, and a trace whose
    // packets came from [`Packet::to_bytes`] re-parses by construction.
    replay_chaos_traced_checked(trace, data_plane, controller, cfg, chaos, mitigation)
        .unwrap_or_else(|e| panic!("replay wire exercise failed: {e}"))
}

/// [`replay_chaos_traced`] with the wire-exercise parse failures
/// surfaced as typed [`IguardError::Wire`] values instead of a panic —
/// for callers feeding externally sourced (pcap-derived or fuzzed)
/// traces through `exercise_wire`, where a malformed packet is an input
/// condition, not a codec bug.
pub fn replay_chaos_traced_checked<D: DataPlane + ?Sized>(
    trace: &Trace,
    data_plane: &mut D,
    controller: &mut Controller,
    cfg: &ReplayConfig,
    chaos: &ChaosConfig,
    mut mitigation: Option<&mut MitigationLog>,
) -> Result<ReplayReport, IguardError> {
    let mut report = ReplayReport::default();
    let wl_start = data_plane.whitelist_counters();
    let mut latency_total = 0.0f64;
    let base_ns = cfg.latency.base_ns();
    let batch_size = cfg.batch_size.max(1);
    // All hot-loop buffers are allocated once and reused across batches.
    let mut wire_buf: Vec<Packet> = Vec::new();
    let mut outcomes: Vec<ProcessOutcome> = Vec::with_capacity(batch_size);
    let mut ctl = ControlLoop {
        digest_chan: DigestChannel::new(chaos.plan.clone()),
        action_chan: ActionChannel::new(chaos.plan.clone(), chaos.tcam_capacity),
        seq_buf: Vec::new(),
        delivered: Vec::new(),
        actions: Vec::new(),
        due: Vec::new(),
        resync_digests: 0,
        last_install_tick: None,
    };
    let mut checkpoint: Option<ControllerSnapshot> = None;
    let mut crash_pending = chaos.crash;
    // Scripted swaps staged in tick order, whatever order they were
    // scripted in (stable sort keeps same-tick swaps in script order, so
    // the later — higher-version — one supersedes as latest-wins).
    let mut swaps: Vec<&(u64, RulesetTxn)> = chaos.ruleset_swaps.iter().collect();
    swaps.sort_by_key(|(at, _)| *at);
    let mut next_swap = 0usize;
    let mut tick: u64 = 0;
    let n = trace.packets.len();
    let mut start = 0;
    while start < n {
        if let Some(crash) = crash_pending {
            if crash.at_tick == tick {
                recover(controller, data_plane, crash.recovery, checkpoint.as_ref());
                crash_pending = None;
            }
        }
        while next_swap < swaps.len() && swaps[next_swap].0 <= tick {
            controller.stage_ruleset(swaps[next_swap].1.clone());
            next_swap += 1;
        }
        let end = (start + batch_size).min(n);
        // Wire exercise re-encodes into the scratch buffer; otherwise the
        // trace slice is fed zero-copy.
        let batch: &[Packet] = if cfg.exercise_wire {
            wire_buf.clear();
            for pkt in &trace.packets[start..end] {
                let bytes = pkt.to_bytes();
                wire_buf.push(Packet::from_bytes(pkt.ts_ns, &bytes)?);
            }
            &wire_buf
        } else {
            &trace.packets[start..end]
        };
        data_plane.process_batch(batch, &mut outcomes);
        debug_assert_eq!(outcomes.len(), batch.len());
        // Per-packet work is the confusion-matrix branch only; everything
        // additive (bytes, drops, loopback copies, latency) folds into the
        // report once per batch.
        let mut mirrored = 0u64;
        let mut dropped = 0u64;
        let mut bytes = 0u64;
        for (i, ((outcome, pkt), &truth)) in
            outcomes.iter().zip(batch).zip(&trace.labels[start..end]).enumerate()
        {
            bytes += pkt.wire_len as u64;
            let flagged = outcome.verdict == PacketVerdict::Drop;
            dropped += flagged as u64;
            match (truth, flagged) {
                (true, true) => report.tp += 1,
                (true, false) => report.fn_ += 1,
                (false, true) => report.fp += 1,
                (false, false) => report.tn += 1,
            }
            if truth {
                if let Some(m) = mitigation.as_deref_mut() {
                    m.note_malicious(pkt.five.canonical(), start as u64 + i as u64, tick);
                }
            }
            mirrored += outcome.mirrored as u64;
        }
        report.packets += outcomes.len() as u64;
        report.bytes += bytes;
        report.dropped += dropped;
        report.loopback += mirrored;
        latency_total += (outcomes.len() as u64 + mirrored) as f64 * base_ns;
        // Controller runs continuously alongside the data plane: digests
        // drain (in arrival order) through the channel and actions apply
        // between batches.
        let do_resync = chaos.resync_interval.is_some_and(|iv| tick > 0 && tick % iv == 0);
        ctl.tick(data_plane, controller, tick, do_resync, &mut report, mitigation.as_deref_mut());
        if chaos.checkpoint_interval.is_some_and(|iv| tick % iv == 0) {
            checkpoint = Some(controller.snapshot());
        }
        tick += 1;
        start = end;
    }

    // Flush phase: the trace is over, but delayed digests, queued retries
    // and un-resynced labels may still be outstanding. Keep ticking the
    // control loop (resyncing every tick, since there is no more packet
    // work to interleave with) until a fully quiescent tick or the budget
    // runs out.
    let resync_enabled = chaos.resync_interval.is_some();
    let mut flush_ticks = 0u64;
    while flush_ticks < chaos.max_flush_ticks {
        // Swaps scripted past the end of the trace still stage (and then
        // hold the flush loop open until delivered).
        while next_swap < swaps.len() && swaps[next_swap].0 <= tick {
            controller.stage_ruleset(swaps[next_swap].1.clone());
            next_swap += 1;
        }
        if !ctl.has_outstanding(controller) && !resync_enabled && next_swap >= swaps.len() {
            break;
        }
        let active = ctl.tick(
            data_plane,
            controller,
            tick,
            resync_enabled,
            &mut report,
            mitigation.as_deref_mut(),
        );
        tick += 1;
        flush_ticks += 1;
        if !active && !ctl.has_outstanding(controller) && next_swap >= swaps.len() {
            break;
        }
    }

    report.flush_ticks = flush_ticks;
    report.resync_digests = ctl.resync_digests;
    let chan = ctl.digest_chan.stats();
    report.chan_dropped = chan.dropped;
    report.chan_duplicated = chan.duplicated;
    report.chan_reordered = chan.reordered;
    report.chan_delayed = chan.delayed;
    report.retries = controller.retries();
    report.retries_exhausted = controller.retries_exhausted();
    report.shed = controller.shed();
    report.dup_digests = controller.dup_digests();
    report.degraded = controller.ever_degraded();
    report.ruleset_swaps = controller.rulesets_delivered();
    report.ruleset_retries = controller.ruleset_send_failures();
    let heal = [ChannelKind::Digest, ChannelKind::Action]
        .into_iter()
        .filter_map(|ch| chaos.plan.heal_tick(ch))
        .max();
    if let (Some(heal), Some(last)) = (heal, ctl.last_install_tick) {
        if last >= heal {
            report.recovery_packets = (last - heal) * batch_size as u64;
        }
    }

    let wl_end = data_plane.whitelist_counters();
    report.wl_lookups = wl_end.lookups - wl_start.lookups;
    report.wl_hits = wl_end.hits - wl_start.hits;

    report.duration_secs = trace.duration_secs().max(1e-9);
    report.avg_latency_ns = latency_total / report.packets.max(1) as f64;
    report.offered_gbps = report.bytes as f64 * 8.0 / report.duration_secs / 1e9;

    // Throughput: loopback copies consume pipe slots; control-plane
    // detours are capped by the CPU port.
    let total_slots = (report.packets + report.loopback) as f64;
    let pipe_share = report.packets as f64 / total_slots.max(1.0);
    let mut throughput = cfg.line_rate_gbps * pipe_share;
    let cp = cfg.control_plane;
    if cp.detour_fraction > 0.0 {
        let detoured = throughput * cp.detour_fraction;
        let passed = throughput - detoured + detoured.min(cp.cp_port_gbps);
        throughput = passed.min(cfg.line_rate_gbps);
    }
    report.throughput_gbps = throughput.min(cfg.line_rate_gbps);
    report.digest_kbps = controller.overhead_kbps(report.duration_secs);
    Ok(report)
}

/// A pull-based packet supplier for [`replay_stream`]: fills caller-owned
/// buffers so the replay loop never allocates per batch, no matter how
/// long the stream runs. Implemented by
/// [`iguard_synth::streaming::StreamingTrace`]; tests implement it over
/// in-memory traces.
pub trait PacketSource {
    /// Fills `pkts`/`labels` (cleared first) with up to `max` packets;
    /// returns the count, 0 at end of stream. Successive calls walk one
    /// fixed packet sequence — the concatenation of all fills must not
    /// depend on `max`.
    fn fill_next(&mut self, max: usize, pkts: &mut Vec<Packet>, labels: &mut Vec<bool>) -> usize;
}

impl PacketSource for iguard_synth::streaming::StreamingTrace {
    fn fill_next(&mut self, max: usize, pkts: &mut Vec<Packet>, labels: &mut Vec<bool>) -> usize {
        iguard_synth::streaming::StreamingTrace::fill_next(self, max, pkts, labels)
    }
}

/// [`replay`] over a [`PacketSource`] instead of a materialised
/// [`Trace`]: the workload is generated batch-by-batch into two reused
/// buffers, so memory is O(batch), not O(trace) — the entry point of the
/// million-flow benches. The control loop is the ideal (fault-free) one;
/// accounting matches [`replay_chaos`] with the default [`ChaosConfig`]
/// fed the same packets at the same batch size.
pub fn replay_stream<D: DataPlane + ?Sized, S: PacketSource + ?Sized>(
    source: &mut S,
    data_plane: &mut D,
    controller: &mut Controller,
    cfg: &ReplayConfig,
) -> ReplayReport {
    let mut report = ReplayReport::default();
    let wl_start = data_plane.whitelist_counters();
    let base_ns = cfg.latency.base_ns();
    let batch_size = cfg.batch_size.max(1);
    // The entire hot loop runs on these five buffers, allocated once.
    let mut pkts: Vec<Packet> = Vec::with_capacity(batch_size);
    let mut labels: Vec<bool> = Vec::with_capacity(batch_size);
    let mut outcomes: Vec<ProcessOutcome> = Vec::with_capacity(batch_size);
    let mut ctl = ControlLoop {
        digest_chan: DigestChannel::new(FaultPlan::none()),
        action_chan: ActionChannel::new(FaultPlan::none(), usize::MAX),
        seq_buf: Vec::new(),
        delivered: Vec::new(),
        actions: Vec::new(),
        due: Vec::new(),
        resync_digests: 0,
        last_install_tick: None,
    };
    let mut tick: u64 = 0;
    let mut first_ts: Option<u64> = None;
    let mut last_ts: u64 = 0;
    while source.fill_next(batch_size, &mut pkts, &mut labels) > 0 {
        data_plane.process_batch(&pkts, &mut outcomes);
        debug_assert_eq!(outcomes.len(), pkts.len());
        if first_ts.is_none() {
            first_ts = pkts.first().map(|p| p.ts_ns);
        }
        if let Some(p) = pkts.last() {
            last_ts = p.ts_ns;
        }
        let mut mirrored = 0u64;
        let mut dropped = 0u64;
        let mut bytes = 0u64;
        for ((outcome, pkt), &truth) in outcomes.iter().zip(&pkts).zip(&labels) {
            bytes += pkt.wire_len as u64;
            let flagged = outcome.verdict == PacketVerdict::Drop;
            dropped += flagged as u64;
            match (truth, flagged) {
                (true, true) => report.tp += 1,
                (true, false) => report.fn_ += 1,
                (false, true) => report.fp += 1,
                (false, false) => report.tn += 1,
            }
            mirrored += outcome.mirrored as u64;
        }
        report.packets += outcomes.len() as u64;
        report.bytes += bytes;
        report.dropped += dropped;
        report.loopback += mirrored;
        report.avg_latency_ns += (outcomes.len() as u64 + mirrored) as f64 * base_ns;
        ctl.tick(data_plane, controller, tick, false, &mut report, None);
        tick += 1;
    }
    // Flush in-transit control work (the ideal channel is synchronous, so
    // this converges in at most a couple of ticks).
    let mut flush_ticks = 0u64;
    while flush_ticks < 16 {
        if !ctl.has_outstanding(controller) {
            break;
        }
        let active = ctl.tick(data_plane, controller, tick, false, &mut report, None);
        tick += 1;
        flush_ticks += 1;
        if !active && !ctl.has_outstanding(controller) {
            break;
        }
    }
    report.flush_ticks = flush_ticks;
    report.ruleset_swaps = controller.rulesets_delivered();
    report.ruleset_retries = controller.ruleset_send_failures();

    let wl_end = data_plane.whitelist_counters();
    report.wl_lookups = wl_end.lookups - wl_start.lookups;
    report.wl_hits = wl_end.hits - wl_start.hits;

    report.duration_secs = ((last_ts.saturating_sub(first_ts.unwrap_or(0))) as f64 / 1e9).max(1e-9);
    report.avg_latency_ns /= report.packets.max(1) as f64;
    report.offered_gbps = report.bytes as f64 * 8.0 / report.duration_secs / 1e9;
    let total_slots = (report.packets + report.loopback) as f64;
    let pipe_share = report.packets as f64 / total_slots.max(1.0);
    let mut throughput = cfg.line_rate_gbps * pipe_share;
    let cp = cfg.control_plane;
    if cp.detour_fraction > 0.0 {
        let detoured = throughput * cp.detour_fraction;
        let passed = throughput - detoured + detoured.min(cp.cp_port_gbps);
        throughput = passed.min(cfg.line_rate_gbps);
    }
    report.throughput_gbps = throughput.min(cfg.line_rate_gbps);
    report.digest_kbps = controller.overhead_kbps(report.duration_secs);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use iguard_core::rules::{Hypercube, RuleSet};
    use iguard_flow::table::FlowTableConfig;
    use iguard_runtime::rng::Rng;
    use iguard_synth::attacks::Attack;
    use iguard_synth::benign::benign_trace;
    use iguard_synth::streaming::StreamingTrace;

    fn accept_all(dim: usize) -> RuleSet {
        RuleSet {
            bounds: vec![(0.0, 1.0); dim],
            whitelist: vec![Hypercube {
                lo: vec![f32::NEG_INFINITY; dim],
                hi: vec![f32::INFINITY; dim],
            }],
            total_regions: 1,
        }
    }

    /// FL whitelist benign iff std of IPD (feature 10) above a floor —
    /// flood tooling is machine-regular, benign jitter is not.
    fn fl_ipd_jitter_above(floor: f32) -> RuleSet {
        let mut lo = vec![f32::NEG_INFINITY; 13];
        let hi = vec![f32::INFINITY; 13];
        lo[10] = floor;
        RuleSet {
            bounds: vec![(0.0, 2000.0); 13],
            whitelist: vec![Hypercube { lo, hi }],
            total_regions: 2,
        }
    }

    fn pipeline(fl: RuleSet) -> Pipeline {
        Pipeline::new(
            PipelineConfig {
                flow_table: FlowTableConfig {
                    slots_per_table: 8192,
                    pkt_threshold: 4,
                    ..Default::default()
                },
                drop_malicious: true,
                log_compress: false,
                ..Default::default()
            },
            fl,
            accept_all(4),
        )
    }

    #[test]
    fn benign_trace_mostly_forwarded() {
        let mut rng = Rng::seed_from_u64(1);
        let trace = benign_trace(150, 5.0, &mut rng);
        let mut p = pipeline(accept_all(13));
        let mut c = Controller::new(ControllerConfig::default());
        let r = replay(&trace, &mut p, &mut c, &ReplayConfig::default());
        assert_eq!(r.packets as usize, trace.len());
        assert_eq!(r.fp, 0, "accept-all whitelist must not drop benign");
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn flood_attack_blocked_and_blacklisted() {
        let mut rng = Rng::seed_from_u64(2);
        let benign = benign_trace(100, 5.0, &mut rng);
        let attack = Attack::UdpDdos.trace(30, 5.0, &mut rng);
        let trace = iguard_synth::trace::Trace::merge(vec![benign, attack]);
        let mut p = pipeline(fl_ipd_jitter_above(0.0008));
        let mut c = Controller::new(ControllerConfig::default());
        let r = replay(&trace, &mut p, &mut c, &ReplayConfig::default());
        let cm = r.confusion();
        assert!(cm.recall() > 0.8, "recall {} too low", cm.recall());
        assert!(p.blacklist_len() > 0, "malicious flows should be blacklisted");
        assert!(r.digests > 0);
    }

    /// Unwrap-audit regression: the checked wire-exercise entry returns
    /// the identical report to the infallible convenience wrapper on a
    /// self-generated trace — converting the reparse `expect` to a typed
    /// `Result` changed no accounting.
    #[test]
    fn checked_wire_replay_matches_infallible() {
        let mut rng = Rng::seed_from_u64(11);
        let trace = benign_trace(60, 3.0, &mut rng);
        let cfg = ReplayConfig::default().with_exercise_wire(true);
        let run = |checked: bool| -> ReplayReport {
            let mut p = pipeline(accept_all(13));
            let mut c = Controller::new(ControllerConfig::default());
            if checked {
                replay_chaos_traced_checked(
                    &trace,
                    &mut p,
                    &mut c,
                    &cfg,
                    &ChaosConfig::default(),
                    None,
                )
                .expect("self-generated trace round-trips")
            } else {
                replay_chaos(&trace, &mut p, &mut c, &cfg, &ChaosConfig::default())
            }
        };
        let (a, b) = (run(true), run(false));
        assert_eq!(a.packets, b.packets);
        assert_eq!((a.tp, a.fp, a.tn, a.fn_), (b.tp, b.fp, b.tn, b.fn_));
        assert_eq!(a.digests, b.digests);
        assert_eq!(a.bytes, b.bytes);
    }

    /// Unwrap-audit regression: a malformed wire buffer surfaces as the
    /// typed [`IguardError::Wire`] the checked replay propagates, not a
    /// panic.
    #[test]
    fn wire_parse_failure_is_typed() {
        let mut rng = Rng::seed_from_u64(12);
        let trace = benign_trace(2, 1.0, &mut rng);
        let bytes = trace.packets[0].to_bytes();
        let err = Packet::from_bytes(0, &bytes[..bytes.len() - 4]).unwrap_err();
        let lifted: IguardError = err.into();
        assert!(matches!(lifted, IguardError::Wire(_)), "{lifted}");
    }

    #[test]
    fn latency_base_is_532_8ns() {
        let m = LatencyModel::default();
        assert!((m.base_ns() - 532.8).abs() < 1e-9);
    }

    #[test]
    fn loopback_raises_avg_latency() {
        let mut rng = Rng::seed_from_u64(3);
        let trace = benign_trace(100, 5.0, &mut rng);
        let mut p = pipeline(accept_all(13));
        let mut c = Controller::new(ControllerConfig::default());
        let r = replay(&trace, &mut p, &mut c, &ReplayConfig::default());
        assert!(r.avg_latency_ns >= 532.8);
        assert!(r.avg_latency_ns < 2.0 * 532.8);
        assert!(r.loopback > 0);
    }

    #[test]
    fn data_plane_throughput_beats_control_plane_detour() {
        let mut rng = Rng::seed_from_u64(4);
        let trace = benign_trace(200, 2.0, &mut rng);
        let mk_report = |cp: ControlPlaneModel| {
            let mut p = pipeline(accept_all(13));
            let mut c = Controller::new(ControllerConfig::default());
            let cfg = ReplayConfig { control_plane: cp, ..Default::default() };
            replay(&trace, &mut p, &mut c, &cfg)
        };
        let iguard = mk_report(ControlPlaneModel::iguard());
        let horuseye = mk_report(ControlPlaneModel::control_plane_detection());
        assert!(
            iguard.throughput_gbps > 1.4 * horuseye.throughput_gbps,
            "iGuard {} vs control-plane {}",
            iguard.throughput_gbps,
            horuseye.throughput_gbps
        );
        // This synthetic mix has short flows (frequent blue-path mirrors);
        // the App. B.1 bench uses long flows and lands near line rate.
        assert!(iguard.throughput_gbps > 30.0, "iGuard throughput {}", iguard.throughput_gbps);
    }

    #[test]
    fn wire_exercise_is_lossless() {
        let mut rng = Rng::seed_from_u64(5);
        let trace = benign_trace(40, 1.0, &mut rng);
        let run = |wire: bool| {
            let mut p = pipeline(accept_all(13));
            let mut c = Controller::new(ControllerConfig::default());
            let cfg = ReplayConfig { exercise_wire: wire, ..Default::default() };
            replay(&trace, &mut p, &mut c, &cfg)
        };
        let direct = run(false);
        let parsed = run(true);
        assert_eq!(direct.packets, parsed.packets);
        assert_eq!(direct.dropped, parsed.dropped);
        assert_eq!(direct.tp, parsed.tp);
    }

    #[test]
    fn stream_replay_matches_materialised_replay() {
        use iguard_synth::streaming::StreamingConfig;
        let scfg = StreamingConfig::default().with_seed(11).with_total_flows(400);
        let trace = StreamingTrace::new(scfg.clone()).materialize();
        let cfg = ReplayConfig::default().with_batch_size(64);
        let run_mat = || {
            let mut p = pipeline(fl_ipd_jitter_above(0.0008));
            let mut c = Controller::new(ControllerConfig::default());
            let r = replay(&trace, &mut p, &mut c, &cfg);
            (r, p.blacklist_contents())
        };
        let run_stream = || {
            let mut src = StreamingTrace::new(scfg.clone());
            let mut p = pipeline(fl_ipd_jitter_above(0.0008));
            let mut c = Controller::new(ControllerConfig::default());
            let r = replay_stream(&mut src, &mut p, &mut c, &cfg);
            (r, p.blacklist_contents())
        };
        let (m, m_bl) = run_mat();
        let (s, s_bl) = run_stream();
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (s.tp, s.fp, s.tn, s.fn_));
        assert_eq!(m.packets, s.packets);
        assert_eq!(m.bytes, s.bytes);
        assert_eq!(m.dropped, s.dropped);
        assert_eq!(m.loopback, s.loopback);
        assert_eq!(m.digests, s.digests);
        assert_eq!(m.wl_lookups, s.wl_lookups);
        assert_eq!(m_bl, s_bl);
        assert!(m.packets > 1000, "trace too small to be meaningful");
    }

    #[test]
    fn scripted_ruleset_swap_retries_until_channel_heals() {
        use crate::tcam::{RangeEntry, RangeTable};
        let mut rng = Rng::seed_from_u64(6);
        let trace = benign_trace(120, 5.0, &mut rng);
        let mut p = pipeline(accept_all(13));
        let mut c = Controller::new(ControllerConfig::default());
        let mut table = RangeTable::new(vec![4, 4]);
        table.push(RangeEntry { fields: vec![(0, 7), (0, 15)], priority: 0 });
        let txn = RulesetTxn::full_install(1, &table, accept_all(13));
        // The action channel is down for the first 10 ticks; the swap is
        // staged at tick 2 and must survive on backoff until the heal.
        let chaos = ChaosConfig::default()
            .with_plan(FaultPlan::none().with_outage(ChannelKind::Action, 0, 10).with_seed(5))
            .with_ruleset_swap(2, txn);
        let cfg = ReplayConfig::default().with_batch_size(8);
        let r = replay_chaos(&trace, &mut p, &mut c, &cfg, &chaos);
        assert_eq!(r.ruleset_swaps, 1, "swap must deliver once the channel heals");
        assert!(r.ruleset_retries >= 1, "outage must force at least one retry");
        assert_eq!(p.ruleset_version(), 1);
        assert!(!c.has_pending_ruleset());
    }

    #[test]
    fn stream_replay_is_batch_size_invariant() {
        use iguard_synth::streaming::StreamingConfig;
        let scfg = StreamingConfig::default().with_seed(12).with_total_flows(200);
        let run = |batch: usize| {
            let mut src = StreamingTrace::new(scfg.clone());
            let mut p = pipeline(fl_ipd_jitter_above(0.0008));
            let mut c = Controller::new(ControllerConfig::default());
            let cfg = ReplayConfig::default().with_batch_size(batch);
            replay_stream(&mut src, &mut p, &mut c, &cfg)
        };
        let a = run(97);
        let b = run(97);
        // Same batch size → fully deterministic.
        assert_eq!((a.tp, a.fp, a.tn, a.fn_), (b.tp, b.fp, b.tn, b.fn_));
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.digests, b.digests);
        // Across batch sizes the packet stream is identical (batch size is
        // only the control-feedback granularity, which may shift installs).
        let c = run(1);
        let d = run(4096);
        for r in [&c, &d] {
            assert_eq!(a.packets, r.packets);
            assert_eq!(a.bytes, r.bytes);
            assert_eq!(a.tp + a.fn_, r.tp + r.fn_, "ground-truth positives differ");
            assert_eq!(a.fp + a.tn, r.fp + r.tn, "ground-truth negatives differ");
        }
    }

    #[test]
    fn mitigation_log_times_first_malicious_packet_to_install() {
        let mut rng = Rng::seed_from_u64(7);
        let benign = benign_trace(80, 5.0, &mut rng);
        let attack = Attack::UdpDdos.trace(20, 5.0, &mut rng);
        let trace = iguard_synth::trace::Trace::merge(vec![benign, attack]);
        let mut p = pipeline(fl_ipd_jitter_above(0.0008));
        let mut c = Controller::new(ControllerConfig::default());
        let mut log = MitigationLog::default();
        let r = replay_chaos_traced(
            &trace,
            &mut p,
            &mut c,
            &ReplayConfig::default(),
            &ChaosConfig::default(),
            Some(&mut log),
        );
        assert!(!log.records.is_empty(), "flood flows must get mitigation records");
        // False-positive installs (benign flows the FL rules rejected)
        // carry no mitigation timeline, so records ≤ installs.
        assert!(log.records.len() <= p.blacklist_len());
        for rec in &log.records {
            assert!(rec.installed_tick >= rec.first_seen_tick);
            // A flow needs pkt_threshold packets to reach the blue path,
            // so its exposure is at least that many packets.
            assert!(rec.packets_before_install >= 4, "exposure {}", rec.packets_before_install);
        }
        // Packet-axis samples are bounded by the flow's own traffic.
        let ttm = log.ttm_packets_sorted();
        assert!(*ttm.last().unwrap() <= r.tp + r.fn_);
        assert_eq!(ttm.len(), log.records.len());
        // Fast per-packet feedback (batch 1) mitigates within a few
        // packets of the classification threshold.
        assert!(ttm[ttm.len() / 2] <= 16, "median exposure {} packets", ttm[ttm.len() / 2]);
    }

    #[test]
    fn mitigation_log_is_identical_across_backends() {
        use crate::sharded::{ShardedPipeline, ShardedPipelineConfig};
        let mut rng = Rng::seed_from_u64(8);
        let benign = benign_trace(60, 5.0, &mut rng);
        let attack = Attack::TcpDdos.trace(15, 5.0, &mut rng);
        let trace = iguard_synth::trace::Trace::merge(vec![benign, attack]);
        let cfg = ReplayConfig::default().with_batch_size(32);
        let run = |shards: Option<usize>| {
            let mut c = Controller::new(ControllerConfig::default());
            let mut log = MitigationLog::default();
            let fl = fl_ipd_jitter_above(0.0008);
            match shards {
                None => {
                    let mut p = pipeline(fl);
                    replay_chaos_traced(
                        &trace,
                        &mut p,
                        &mut c,
                        &cfg,
                        &ChaosConfig::default(),
                        Some(&mut log),
                    );
                }
                Some(s) => {
                    let pcfg = PipelineConfig {
                        flow_table: FlowTableConfig {
                            slots_per_table: 8192,
                            pkt_threshold: 4,
                            ..Default::default()
                        },
                        ..Default::default()
                    };
                    let mut p = ShardedPipeline::new(
                        ShardedPipelineConfig::from(pcfg).with_shards(s),
                        fl,
                        accept_all(4),
                    );
                    replay_chaos_traced(
                        &trace,
                        &mut p,
                        &mut c,
                        &cfg,
                        &ChaosConfig::default(),
                        Some(&mut log),
                    );
                }
            }
            (log.records.clone(), log.unmitigated())
        };
        let serial = run(None);
        for shards in [1, 8] {
            let sharded = run(Some(shards));
            // Collision sets differ between the serial and sharded tables,
            // so only the sharded grid must agree record-for-record; the
            // serial run pins the same unmitigated count.
            if shards == 1 {
                assert_eq!(sharded.1, serial.1, "unmitigated count differs from serial");
            } else {
                assert_eq!(sharded, run(Some(1)), "sharded mitigation records differ");
            }
            assert!(!sharded.0.is_empty());
        }
    }
}
