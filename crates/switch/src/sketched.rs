//! Sketch-assisted data plane: a count–min + Bloom admission filter in
//! front of the exact flow tables, under a hard resident-bytes budget.
//!
//! The exact [`crate::pipeline::Pipeline`] gives every new flow a table
//! slot on its first packet. At a million concurrent flows that is
//! hundreds of megabytes of register state — far beyond what a switch
//! pipeline stage holds. The Zipf reality of traffic is that *most flows
//! are short*: a slot spent on a two-packet DNS exchange is a slot a
//! long-lived flow (the ones the FL whitelist can actually classify)
//! cannot use.
//!
//! [`SketchedPipeline`] interposes an **admission layer** on the untracked
//! path of the flow table (the [`iguard_flow::table::FlowShard`]
//! resident/admit seam):
//!
//! * A **Bloom filter** remembers "seen at least once" — the first packet
//!   of any flow stays in the sketch (implicit estimate 1) and never
//!   touches the exact table.
//! * A **count–min sketch** counts repeat arrivals; since CMS only ever
//!   *over*-estimates, any flow that truly reaches
//!   `promote_threshold` packets within a sketch window is **guaranteed**
//!   to be promoted into the exact table by that packet — the bounded-FN
//!   argument of DESIGN.md §12.
//! * Packets of unpromoted flows are **absorbed**: they get the stateless
//!   packet-level verdict (the same decision the orange collision path
//!   makes — the paper's "cannot be tracked" fallback) and are counted in
//!   `switch.sketch.absorbed`.
//!
//! Promoted flows claim exact slots, subject to a **resident-byte
//! budget**: `budget_bytes / slot_bytes` flows at most. At the cap, a
//! pluggable policy ([`SketchEviction`]: FIFO / LRU / random / 2Q) picks
//! a victim, whose slot is released (`switch.sketch.evicted`). CMS counts
//! survive eviction, so an evicted-but-active flow re-promotes on its
//! next packet.
//!
//! With `promote_threshold ≤ 1` **and** no budget, the admission layer is
//! inert and the backend is packet-for-packet identical to [`Pipeline`]
//! (verdicts, seq-tagged digests, every counter) — pinned by the
//! `scale_parity` suite.

use std::collections::HashMap;

use iguard_core::error::SwitchError;
use iguard_core::rules::RuleSet;
use iguard_flow::features::packet_level_features_array;
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::packet::Packet;
use iguard_flow::sketch::{BloomFilter, CountMinSketch};
use iguard_flow::table::{FlowShard, FlowTableStats, InsertOutcome, ObserveTallies, SlotClaim};
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;
use iguard_telemetry::{counter, histogram};

use crate::data_plane::{DataPlane, SketchStats};
use crate::pipeline::{
    record_batch_telemetry, update_overload, ControlAction, Digest, MatchEngine, MatchScratch,
    PacketVerdict, PathCounters, PathTaken, PipelineConfig, ProcessOutcome, SeqDigest, ShardState,
    WhitelistCounters, BATCH_CHUNK, RESYNC_SEQ_BASE,
};
use crate::ruleset::{RulesetCounters, RulesetTxn};

/// Victim-selection policy of the budgeted exact table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SketchEviction {
    /// Evict the oldest-admitted flow.
    Fifo,
    /// Evict the least-recently-*seen* flow (any packet refreshes).
    Lru,
    /// Evict a uniformly random tracked flow (seeded, deterministic).
    Random,
    /// Simplified 2Q: fresh admissions sit in a FIFO probation queue
    /// (A1in); a repeat packet promotes to the protected LRU main queue
    /// (Am). Victims come from probation first — one-hit wonders never
    /// displace proven flows.
    TwoQ,
}

/// Configuration of a [`SketchedPipeline`]. The default is the inert
/// exact-parity mode: no budget, promote on first packet.
#[derive(Clone, Copy, Debug)]
pub struct SketchedPipelineConfig {
    pub pipeline: PipelineConfig,
    /// Hard cap on exact-table resident bytes (`None` = unbudgeted).
    /// Translated to a tracked-flow cap via
    /// [`FlowShard::slot_bytes`], minimum 1 flow.
    pub budget_bytes: Option<usize>,
    /// Sketch estimate at which a flow earns an exact slot. `≤ 1`
    /// bypasses the sketch entirely (exact-parity mode).
    pub promote_threshold: u32,
    pub eviction: SketchEviction,
    /// Count–min geometry (width is rounded up to a power of two).
    pub cms_width: usize,
    pub cms_depth: usize,
    /// Bloom geometry (bits rounded up to a power of two).
    pub bloom_bits: usize,
    pub bloom_hashes: usize,
    /// Sketch window: CMS + Bloom are cleared after this many untracked
    /// observations, so stale counts cannot promote dead flows forever.
    pub window_packets: u64,
    /// Seed of the sketch hash families and the random-eviction RNG.
    pub seed: u64,
}

impl Default for SketchedPipelineConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            budget_bytes: None,
            promote_threshold: 1,
            eviction: SketchEviction::Fifo,
            cms_width: 4096,
            cms_depth: 4,
            bloom_bits: 1 << 16,
            bloom_hashes: 2,
            window_packets: 1 << 20,
            seed: 0xC0FF_EE00,
        }
    }
}

iguard_runtime::builder_setters! { SketchedPipelineConfig =>
    /// Builder: pipeline semantics.
    with_pipeline => pipeline: PipelineConfig,
    /// Builder: exact-table byte budget (`None` = unbudgeted).
    with_budget_bytes => budget_bytes: Option<usize>,
    /// Builder: sketch estimate at which a flow earns an exact slot.
    with_promote_threshold => promote_threshold: u32,
    /// Builder: eviction policy under budget pressure.
    with_eviction => eviction: SketchEviction,
    /// Builder: sketch hash-family / eviction-RNG seed.
    with_seed => seed: u64,
}

const NIL: u32 = u32::MAX;

/// Intrusive doubly-linked-list node of the queue-based policies.
#[derive(Clone, Copy, Debug)]
struct Node {
    key: FiveTuple,
    prev: u32,
    next: u32,
    /// Which list the node is on: 0 = probation/main queue, 1 = 2Q's
    /// protected Am queue.
    list: u8,
}

/// The set of tracked flows plus the policy's victim ordering. `len()` is
/// exactly the number of exact-table residents — kept in lockstep via the
/// [`SlotClaim`] channel — so budget checks are O(1) and never scan the
/// tables.
struct EvictionBook {
    policy: SketchEviction,
    /// Point lookups only — never iterated, so std's seeded hasher cannot
    /// leak nondeterminism into victim choice.
    map: HashMap<FiveTuple, u32>,
    slab: Vec<Node>,
    free: Vec<u32>,
    /// Queue heads/tails, indexed by list id (list 1 used by 2Q only).
    head: [u32; 2],
    tail: [u32; 2],
    /// Dense key vector of the Random policy (swap-remove victimhood).
    dense: Vec<FiveTuple>,
    rng: Rng,
}

impl EvictionBook {
    fn new(policy: SketchEviction, seed: u64) -> Self {
        Self {
            policy,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: [NIL; 2],
            tail: [NIL; 2],
            dense: Vec::new(),
            rng: Rng::seed_from_u64(seed),
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn unlink(&mut self, i: u32) {
        let Node { prev, next, list, .. } = self.slab[i as usize];
        match prev {
            NIL => self.head[list as usize] = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail[list as usize] = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    fn push_tail(&mut self, i: u32, list: u8) {
        let t = self.tail[list as usize];
        self.slab[i as usize].prev = t;
        self.slab[i as usize].next = NIL;
        self.slab[i as usize].list = list;
        match t {
            NIL => self.head[list as usize] = i,
            t => self.slab[t as usize].next = i,
        }
        self.tail[list as usize] = i;
    }

    /// Records a freshly admitted flow.
    fn insert(&mut self, key: FiveTuple) {
        if self.policy == SketchEviction::Random {
            self.map.insert(key, self.dense.len() as u32);
            self.dense.push(key);
            return;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize].key = key;
                i
            }
            None => {
                self.slab.push(Node { key, prev: NIL, next: NIL, list: 0 });
                (self.slab.len() - 1) as u32
            }
        };
        self.map.insert(key, i);
        self.push_tail(i, 0);
    }

    /// A tracked flow was seen again (resident hit).
    fn touch(&mut self, key: &FiveTuple) {
        match self.policy {
            SketchEviction::Fifo | SketchEviction::Random => {}
            SketchEviction::Lru => {
                if let Some(&i) = self.map.get(key) {
                    self.unlink(i);
                    self.push_tail(i, 0);
                }
            }
            SketchEviction::TwoQ => {
                // Any re-access lands the flow at the protected queue's
                // LRU tail.
                if let Some(&i) = self.map.get(key) {
                    self.unlink(i);
                    self.push_tail(i, 1);
                }
            }
        }
    }

    /// Forgets a flow (controller clear, or displacement by the table's
    /// own timeout/classified-evict reclaim). Returns false if unknown.
    fn remove(&mut self, key: &FiveTuple) -> bool {
        let Some(i) = self.map.remove(key) else { return false };
        if self.policy == SketchEviction::Random {
            let i = i as usize;
            self.dense.swap_remove(i);
            if i < self.dense.len() {
                self.map.insert(self.dense[i], i as u32);
            }
            return true;
        }
        self.unlink(i);
        self.free.push(i);
        true
    }

    /// Picks and removes the policy's victim.
    fn pop_victim(&mut self) -> Option<FiveTuple> {
        if self.policy == SketchEviction::Random {
            if self.dense.is_empty() {
                return None;
            }
            let i = self.rng.gen_range(0..self.dense.len());
            let key = self.dense[i];
            self.remove(&key);
            return Some(key);
        }
        // 2Q prefers the probation queue; FIFO/LRU only have list 0.
        let i = match self.head[0] {
            NIL => self.head[1],
            i => i,
        };
        if i == NIL {
            return None;
        }
        let key = self.slab[i as usize].key;
        self.map.remove(&key);
        self.unlink(i);
        self.free.push(i);
        Some(key)
    }
}

/// The sketch-assisted [`DataPlane`] backend — see the module docs.
pub struct SketchedPipeline {
    cfg: SketchedPipelineConfig,
    engine: MatchEngine,
    state: ShardState,
    scratch: MatchScratch,
    cms: CountMinSketch,
    bloom: BloomFilter,
    book: EvictionBook,
    max_tracked: usize,
    window_left: u64,
    tallies: ObserveTallies,
    promoted: u64,
    absorbed: u64,
    evicted: u64,
    resync_seq: u64,
}

impl SketchedPipeline {
    pub fn new(cfg: SketchedPipelineConfig, fl_rules: RuleSet, pl_rules: RuleSet) -> Self {
        assert!(cfg.window_packets >= 1, "sketch window must be at least one packet");
        let max_tracked =
            cfg.budget_bytes.map(|b| (b / FlowShard::slot_bytes()).max(1)).unwrap_or(usize::MAX);
        Self {
            engine: MatchEngine::new(&cfg.pipeline, fl_rules, pl_rules),
            state: ShardState::new(cfg.pipeline.flow_table),
            scratch: MatchScratch::default(),
            cms: CountMinSketch::new(cfg.cms_width, cfg.cms_depth, cfg.seed),
            bloom: BloomFilter::new(cfg.bloom_bits, cfg.bloom_hashes, cfg.seed ^ 0x9E37_79B9),
            book: EvictionBook::new(cfg.eviction, cfg.seed.wrapping_add(1)),
            max_tracked,
            window_left: cfg.window_packets,
            tallies: ObserveTallies::default(),
            promoted: 0,
            absorbed: 0,
            evicted: 0,
            resync_seq: 0,
            cfg,
        }
    }

    pub fn config(&self) -> &SketchedPipelineConfig {
        &self.cfg
    }

    /// Flows currently holding an exact slot.
    pub fn tracked(&self) -> usize {
        self.book.len()
    }

    /// Promotion bar after pressure-adaptive tightening: the base
    /// threshold doubles once the flow table crosses the degraded-enter
    /// pressure and quadruples near saturation (≥ 900‰), demanding more
    /// repeat evidence per exact slot exactly when slots are scarcest.
    /// Inert in exact-parity mode (base ≤ 1 never consults the sketch).
    fn effective_promote_threshold(&self) -> u32 {
        let base = self.cfg.promote_threshold;
        if base <= 1 {
            return base;
        }
        let p = self.state.flow.pressure_milli();
        let mult = if p >= 900 {
            4
        } else if p >= self.cfg.pipeline.overload.degrade_enter_milli {
            2
        } else {
            1
        };
        base.saturating_mul(mult)
    }

    /// One sketch observation of an untracked flow: returns true when the
    /// flow's (over-)estimated packet count reaches the promotion bar.
    fn sketch_admit(&mut self, key: &FiveTuple) -> bool {
        if self.window_left == 0 {
            self.cms.clear();
            self.bloom.clear();
            self.window_left = self.cfg.window_packets;
            counter!("switch.sketch.window_reset").inc();
        }
        self.window_left -= 1;
        let seen = self.bloom.insert(key);
        // First sighting is the implicit estimate 1; repeats go through
        // the CMS (whose count starts at the *second* packet, hence +1).
        let est = if seen { self.cms.increment(key).saturating_add(1) } else { 1 };
        let eff = self.effective_promote_threshold();
        if est >= self.cfg.promote_threshold && est < eff {
            // Would have been admitted at the calm threshold — rejected
            // only because pressure raised the bar.
            self.state.overload.admission_tightened += 1;
            counter!("switch.overload.admission_tightened").inc();
        }
        est >= eff
    }

    /// The scalar sketch-assisted walk: identical to
    /// [`MatchEngine::process_one`] except that an untracked flow must get
    /// past the admission sketch (and the byte budget) before it can claim
    /// an exact slot.
    fn process_one_sketched(&mut self, pkt: &Packet, seq: u64) -> ProcessOutcome {
        self.state.processed += 1;
        let key = pkt.five.canonical();

        // Red path: blacklist match.
        if self.state.blacklist.contains(&key) {
            self.state.paths.blacklist += 1;
            counter!("switch.pipeline.path.blacklist").inc();
            return ProcessOutcome {
                verdict: PacketVerdict::Drop,
                path: PathTaken::Blacklist,
                mirrored: false,
            };
        }

        let pl = packet_level_features_array(pkt);
        let (i1, i2) = self.state.flow.slot_index_pair(&key);
        let resident = self.state.flow.observe_resident_prehashed(
            key,
            i1,
            i2,
            pkt,
            pkt.ts_ns,
            &mut self.tallies,
        );
        let outcome = match resident {
            Some(out) => {
                self.book.touch(&key);
                out
            }
            None => {
                let admit = self.cfg.promote_threshold <= 1 || self.sketch_admit(&key);
                if !admit {
                    // Absorbed: the sketch holds the flow's only state, so
                    // the packet gets the stateless PL-only decision — the
                    // same "cannot track" fallback as the collision path.
                    self.absorbed += 1;
                    counter!("switch.sketch.absorbed").inc();
                    self.state.paths.orange += 1;
                    counter!("switch.pipeline.path.orange").inc();
                    let malicious = self.engine.predict_pl(&pl, &mut self.scratch);
                    return ProcessOutcome {
                        verdict: self.engine.verdict_for(malicious),
                        path: PathTaken::Orange,
                        mirrored: false,
                    };
                }
                if self.cfg.promote_threshold > 1 {
                    self.promoted += 1;
                    counter!("switch.sketch.promoted").inc();
                }
                // Budget: make room *before* claiming, so the tracked set
                // never exceeds the cap even transiently.
                while self.book.len() >= self.max_tracked {
                    match self.book.pop_victim() {
                        Some(victim) => {
                            let released = self.state.flow.evict(&victim);
                            debug_assert!(released, "eviction book out of sync with table");
                            self.evicted += 1;
                            counter!("switch.sketch.evicted").inc();
                        }
                        None => break,
                    }
                }
                let (out, claim) =
                    self.state.flow.admit_prehashed(key, i1, i2, pkt, pkt.ts_ns, &mut self.tallies);
                match claim {
                    SlotClaim::Fresh => self.book.insert(key),
                    SlotClaim::Displaced(old) => {
                        self.book.remove(&old);
                        self.book.insert(key);
                    }
                    SlotClaim::Unclaimed => {}
                }
                out
            }
        };

        match outcome {
            InsertOutcome::Classified { label } => {
                self.state.paths.purple += 1;
                counter!("switch.pipeline.path.purple").inc();
                ProcessOutcome {
                    verdict: self.engine.verdict_for(label),
                    path: PathTaken::Purple,
                    mirrored: false,
                }
            }
            InsertOutcome::Early { .. } => {
                self.state.paths.brown += 1;
                counter!("switch.pipeline.path.brown").inc();
                let malicious = self.engine.predict_pl(&pl, &mut self.scratch);
                ProcessOutcome {
                    verdict: self.engine.verdict_for(malicious),
                    path: PathTaken::Brown,
                    mirrored: false,
                }
            }
            InsertOutcome::Ready { stats, timed_out: _ } => {
                self.state.paths.blue += 1;
                counter!("switch.pipeline.path.blue").inc();
                let malicious = self.engine.predict_blue(&stats, &pl, &mut self.scratch);
                let ShardState { overload, digests, .. } = &mut self.state;
                overload.push_digest(
                    digests,
                    SeqDigest { seq, digest: Digest::new(pkt.five, malicious) },
                    &self.cfg.pipeline.overload,
                );
                self.state.paths.green_loopback += 1;
                counter!("switch.pipeline.path.green_loopback").inc();
                self.state.flow.set_label(&pkt.five, malicious);
                ProcessOutcome {
                    verdict: self.engine.verdict_for(malicious),
                    path: PathTaken::Blue,
                    mirrored: true,
                }
            }
            InsertOutcome::PhaseReady { stats, phase } => {
                counter!("switch.phase.boundary").inc();
                // Convict-only early look, same semantics as the exact
                // pipeline: a phase-whitelist hit pulls the blue verdict
                // forward; a benign-looking flow escalates like brown.
                let convicted = self.engine.predict_phase(phase, &stats, &mut self.scratch);
                if convicted {
                    counter!("switch.phase.convicted").inc();
                    self.state.paths.blue += 1;
                    counter!("switch.pipeline.path.blue").inc();
                    let ShardState { overload, digests, .. } = &mut self.state;
                    overload.push_digest(
                        digests,
                        SeqDigest { seq, digest: Digest::at_phase(pkt.five, true, phase) },
                        &self.cfg.pipeline.overload,
                    );
                    self.state.paths.green_loopback += 1;
                    counter!("switch.pipeline.path.green_loopback").inc();
                    self.state.flow.set_label(&pkt.five, true);
                    ProcessOutcome {
                        verdict: self.engine.verdict_for(true),
                        path: PathTaken::Blue,
                        mirrored: true,
                    }
                } else {
                    counter!("switch.phase.escalated").inc();
                    self.state.paths.brown += 1;
                    counter!("switch.pipeline.path.brown").inc();
                    let malicious = self.engine.predict_pl(&pl, &mut self.scratch);
                    ProcessOutcome {
                        verdict: self.engine.verdict_for(malicious),
                        path: PathTaken::Brown,
                        mirrored: false,
                    }
                }
            }
            InsertOutcome::Collision | InsertOutcome::ReplacedClassified { .. } => {
                self.state.paths.orange += 1;
                counter!("switch.pipeline.path.orange").inc();
                let malicious = self.engine.predict_pl(&pl, &mut self.scratch);
                ProcessOutcome {
                    verdict: self.engine.verdict_for(malicious),
                    path: PathTaken::Orange,
                    mirrored: false,
                }
            }
        }
    }

    /// Installs one whitelist per intermediate phase boundary via the
    /// engine's hitless epoch flip (see [`MatchEngine::set_phase_rulesets`]).
    pub fn set_phase_rulesets(&mut self, rulesets: &[RuleSet]) {
        self.engine.set_phase_rulesets(rulesets);
    }
}

impl DataPlane for SketchedPipeline {
    fn process_batch(&mut self, pkts: &[Packet], out: &mut Vec<ProcessOutcome>) {
        out.clear();
        if pkts.is_empty() {
            return;
        }
        record_batch_telemetry(pkts.len());
        out.reserve(pkts.len());
        let base_seq = self.state.processed;
        for (i, p) in pkts.iter().enumerate() {
            let o = self.process_one_sketched(p, base_seq + i as u64);
            out.push(o);
        }
        self.tallies.flush();
        let ocfg = self.cfg.pipeline.overload;
        update_overload(&mut self.state, &ocfg);
        let tracked = self.book.len();
        histogram!("switch.sketch.occupancy").record(tracked as u64);
        if tracked > 0 {
            let bytes = tracked * FlowShard::slot_bytes() + self.cms.bytes() + self.bloom.bytes();
            histogram!("switch.sketch.bytes_per_flow").record((bytes / tracked) as u64);
        }
    }

    fn drain_digests_into(&mut self, out: &mut Vec<Digest>) {
        out.extend(self.state.digests.drain(..).map(|sd| sd.digest));
    }

    fn drain_seq_digests_into(&mut self, out: &mut Vec<SeqDigest>) {
        out.append(&mut self.state.digests);
    }

    fn apply(&mut self, action: ControlAction) {
        match action {
            ControlAction::InstallBlacklist(five) => {
                self.state.blacklist.insert(five.canonical());
            }
            ControlAction::RemoveBlacklist(five) => {
                self.state.blacklist.remove(&five.canonical());
            }
            ControlAction::ClearFlow(five) => {
                if self.state.flow.clear(&five) {
                    self.book.remove(&five.canonical());
                }
            }
        }
    }

    fn apply_ruleset(&mut self, txn: &RulesetTxn) -> Result<(), SwitchError> {
        self.engine.apply_ruleset(txn)
    }

    fn ruleset_version(&self) -> u64 {
        self.engine.ruleset_version()
    }

    fn ruleset_counters(&self) -> RulesetCounters {
        self.engine.ruleset_counters()
    }

    fn blacklist_contents(&self) -> Vec<FiveTuple> {
        let mut v: Vec<FiveTuple> = self.state.blacklist.iter().copied().collect();
        v.sort_unstable();
        v
    }

    fn resync_labeled_into(&mut self, out: &mut Vec<SeqDigest>) {
        let mut flows = Vec::new();
        self.state.flow.labeled_flows_into(&mut flows);
        for (five, malicious) in flows {
            out.push(SeqDigest {
                seq: RESYNC_SEQ_BASE + self.resync_seq,
                digest: Digest::new(five, malicious),
            });
            self.resync_seq += 1;
        }
    }

    fn counters(&self) -> PathCounters {
        self.state.paths
    }

    fn whitelist_counters(&self) -> WhitelistCounters {
        self.scratch.wl
    }

    fn classify_batch(&mut self, rows: &Dataset, out: &mut Vec<bool>) {
        out.clear();
        if rows.rows() == 0 {
            return;
        }
        record_batch_telemetry(rows.rows());
        out.reserve(rows.rows());
        for start in (0..rows.rows()).step_by(BATCH_CHUNK) {
            let end = (start + BATCH_CHUNK).min(rows.rows());
            self.engine.classify_fl_batch(rows, start, end, &mut self.scratch, out);
        }
    }

    fn flow_table_stats(&self) -> FlowTableStats {
        self.state.flow.stats()
    }

    fn blacklist_len(&self) -> usize {
        self.state.blacklist.len()
    }

    fn packets_processed(&self) -> u64 {
        self.state.processed
    }

    fn overload_stats(&self) -> crate::data_plane::OverloadStats {
        self.state.overload_view()
    }

    fn sketch_stats(&self) -> Option<SketchStats> {
        Some(SketchStats {
            tracked: self.book.len(),
            max_tracked: self.max_tracked,
            resident_bytes: self.book.len() * FlowShard::slot_bytes(),
            budget_bytes: self.cfg.budget_bytes,
            sketch_bytes: self.cms.bytes() + self.bloom.bytes(),
            promoted: self.promoted,
            absorbed: self.absorbed,
            evicted: self.evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::testutil::accept_all;
    use iguard_flow::five_tuple::PROTO_UDP;
    use iguard_flow::packet::TcpFlags;

    fn pkt(flow: u16, ts_ms: u64) -> Packet {
        Packet {
            ts_ns: ts_ms * 1_000_000,
            five: FiveTuple::new(0x0A00_0001, 0xC0A8_0001, 10_000 + flow, 53, PROTO_UDP),
            wire_len: 100,
            ttl: 64,
            flags: TcpFlags::default(),
        }
    }

    fn sketchy(budget_flows: usize, threshold: u32, policy: SketchEviction) -> SketchedPipeline {
        let cfg = SketchedPipelineConfig::default()
            .with_budget_bytes(Some(budget_flows * FlowShard::slot_bytes()))
            .with_promote_threshold(threshold)
            .with_eviction(policy);
        SketchedPipeline::new(cfg, accept_all(13), accept_all(4))
    }

    #[test]
    fn first_packet_is_absorbed_then_promoted() {
        let mut dp = sketchy(64, 2, SketchEviction::Fifo);
        let mut out = Vec::new();
        dp.process_batch(&[pkt(1, 0)], &mut out);
        // First packet: sketch only, orange fallback, nothing tracked.
        assert_eq!(out[0].path, PathTaken::Orange);
        assert_eq!(dp.tracked(), 0);
        assert_eq!(dp.sketch_stats().unwrap().absorbed, 1);
        dp.process_batch(&[pkt(1, 1)], &mut out);
        // Second packet: estimate reaches 2 → promoted into an exact slot.
        assert_eq!(dp.tracked(), 1);
        assert_eq!(dp.sketch_stats().unwrap().promoted, 1);
        assert_eq!(out[0].path, PathTaken::Brown);
    }

    #[test]
    fn budget_is_never_exceeded() {
        for policy in [
            SketchEviction::Fifo,
            SketchEviction::Lru,
            SketchEviction::Random,
            SketchEviction::TwoQ,
        ] {
            let mut dp = sketchy(4, 1, policy);
            let mut out = Vec::new();
            for f in 0..64u16 {
                dp.process_batch(&[pkt(f, f as u64)], &mut out);
                assert!(dp.tracked() <= 4, "{policy:?} exceeded budget: {}", dp.tracked());
            }
            let st = dp.sketch_stats().unwrap();
            assert_eq!(st.tracked, 4);
            assert_eq!(st.evicted, 60);
            assert!(st.resident_bytes <= st.budget_bytes.unwrap());
        }
    }

    #[test]
    fn fifo_and_lru_pick_different_victims() {
        // Flows 0,1,2 admitted; flow 0 then re-accessed. A 4th admission
        // must evict flow 0 under FIFO but flow 1 under LRU.
        let drive = |policy| {
            let mut dp = sketchy(3, 1, policy);
            let mut out = Vec::new();
            for f in [0u16, 1, 2, 0] {
                dp.process_batch(&[pkt(f, 1)], &mut out);
            }
            dp.process_batch(&[pkt(3, 2)], &mut out);
            // The victim's flow restarts on its next packet (Early with
            // pkt_count 1 ⇒ it lost its slot); survivors continue.
            dp
        };
        let fifo = drive(SketchEviction::Fifo);
        let lru = drive(SketchEviction::Lru);
        // FIFO victim = flow 0 (oldest admit); its key is gone.
        assert!(!fifo.state.flow.label_of(&pkt(0, 0).five.canonical()).is_some());
        assert!(fifo.state.flow.label_of(&pkt(1, 0).five.canonical()).is_some());
        // LRU victim = flow 1 (flow 0 was refreshed).
        assert!(lru.state.flow.label_of(&pkt(0, 0).five.canonical()).is_some());
        assert!(!lru.state.flow.label_of(&pkt(1, 0).five.canonical()).is_some());
    }

    #[test]
    fn two_q_protects_reaccessed_flows() {
        let mut dp = sketchy(3, 1, SketchEviction::TwoQ);
        let mut out = Vec::new();
        // Admit 0,1,2; re-access 0 (promotes it to the protected queue).
        for f in [0u16, 1, 2, 0] {
            dp.process_batch(&[pkt(f, 1)], &mut out);
        }
        // Two new admissions evict from probation (1 then 2), never 0.
        for f in [3u16, 4] {
            dp.process_batch(&[pkt(f, 2)], &mut out);
        }
        assert!(dp.state.flow.label_of(&pkt(0, 0).five.canonical()).is_some());
        assert!(!dp.state.flow.label_of(&pkt(1, 0).five.canonical()).is_some());
        assert!(!dp.state.flow.label_of(&pkt(2, 0).five.canonical()).is_some());
    }

    #[test]
    fn random_eviction_is_seeded_deterministic() {
        let run = |seed| {
            let cfg = SketchedPipelineConfig::default()
                .with_budget_bytes(Some(8 * FlowShard::slot_bytes()))
                .with_eviction(SketchEviction::Random)
                .with_seed(seed);
            let mut dp = SketchedPipeline::new(cfg, accept_all(13), accept_all(4));
            let mut out = Vec::new();
            for f in 0..200u16 {
                dp.process_batch(&[pkt(f, f as u64)], &mut out);
            }
            let mut keys: Vec<FiveTuple> = dp.book.dense.clone();
            keys.sort_unstable();
            keys
        };
        assert_eq!(run(1), run(1), "same seed must evict the same victims");
        assert_ne!(run(1), run(2), "different seeds should diverge");
    }
}
