//! Fallible control channels between the data plane and the controller.
//!
//! PR 3 gave replay a lossless, instantaneous control loop: every digest
//! the data plane produced reached the controller the same tick, and
//! every controller action took effect immediately. Real switch control
//! channels (digest DMA rings, gRPC/P4Runtime sessions) drop, duplicate,
//! delay and reorder messages, and rule installs fail — so this module
//! puts an explicitly fallible channel on each direction:
//!
//! * [`DigestChannel`] — data plane → controller. Messages offered each
//!   tick are subjected to the [`FaultPlan`]'s drop / duplicate / delay
//!   probabilities on admission and adjacent-pair reorder on delivery;
//!   scripted outage windows lose everything offered while down.
//! * [`ActionChannel`] — controller → data plane. Each send can fail with
//!   [`SwitchError::ChannelDown`] (outage or sampled send failure) or
//!   [`SwitchError::TcamFull`] (install into a saturated table); the
//!   caller decides whether to retry.
//!
//! Both channels own one derived [`FaultStream`] and consume it serially
//! in message order. Because they sit on the *merged* (sequence-ordered)
//! digest stream of the replay loop, fault decisions are byte-identical
//! at any shard/worker count. A [`FaultPlan::none`] plan takes a
//! pass-through fast path that performs no RNG draws at all, so fault-free
//! chaos replay is bit-for-bit the plain replay.

use iguard_core::{IguardError, SwitchError};
use iguard_runtime::{ChannelKind, FaultPlan, FaultStream};
use iguard_telemetry::counter;

use crate::data_plane::DataPlane;
use crate::pipeline::{ControlAction, SeqDigest};

/// Observable per-channel fault accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages offered for transit.
    pub offered: u64,
    /// Messages handed to the receiver (duplicates count individually).
    pub delivered: u64,
    /// Messages lost (sampled drops + outage losses).
    pub dropped: u64,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Adjacent pairs swapped at delivery.
    pub reordered: u64,
    /// Messages held back at least one tick.
    pub delayed: u64,
}

/// In-transit message: delivery-due tick, admission order, payload.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    due: u64,
    ord: u64,
    msg: SeqDigest,
}

/// The lossy data-plane → controller digest channel.
pub struct DigestChannel {
    plan: FaultPlan,
    stream: FaultStream,
    in_flight: Vec<InFlight>,
    /// Reused delivery scratch: messages due this tick, pre-sort. Kept on
    /// the channel so steady-state delivery performs no allocation.
    ready: Vec<InFlight>,
    admitted: u64,
    stats: ChannelStats,
}

impl DigestChannel {
    pub fn new(plan: FaultPlan) -> Self {
        let stream = plan.stream(ChannelKind::Digest);
        Self {
            plan,
            stream,
            in_flight: Vec::new(),
            ready: Vec::new(),
            admitted: 0,
            stats: ChannelStats::default(),
        }
    }

    /// Offers a batch of digests for transit at `tick`. Fault decisions
    /// are drawn per message, in message order.
    pub fn offer(&mut self, tick: u64, digests: &[SeqDigest]) {
        self.stats.offered += digests.len() as u64;
        if self.plan.is_none() {
            // Pass-through fast path: no draws, instantaneous transit.
            for &msg in digests {
                self.in_flight.push(InFlight { due: tick, ord: self.admitted, msg });
                self.admitted += 1;
            }
            return;
        }
        let down = self.plan.is_down(ChannelKind::Digest, tick);
        for &msg in digests {
            if down {
                // Scripted outage: everything offered is lost, no draws —
                // the stream stays aligned with runs that differ only in
                // outage windows.
                self.stats.dropped += 1;
                counter!("switch.chan.dropped").inc();
                continue;
            }
            if self.stream.fires(self.plan.drop_p) {
                self.stats.dropped += 1;
                counter!("switch.chan.dropped").inc();
                continue;
            }
            let copies = if self.stream.fires(self.plan.duplicate_p) {
                self.stats.duplicated += 1;
                counter!("switch.chan.duplicated").inc();
                2
            } else {
                1
            };
            let due = if self.stream.fires(self.plan.delay_p) {
                self.stats.delayed += 1;
                counter!("switch.chan.delayed").inc();
                tick + self.stream.delay_ticks(self.plan.max_delay_ticks)
            } else {
                tick
            };
            for _ in 0..copies {
                self.in_flight.push(InFlight { due, ord: self.admitted, msg });
                self.admitted += 1;
            }
        }
    }

    /// Delivers every in-transit message due at `tick` into `out`
    /// (cleared first), in (due, admission) order with adjacent-pair
    /// reorder faults applied.
    pub fn deliver_into(&mut self, tick: u64, out: &mut Vec<SeqDigest>) {
        out.clear();
        if self.in_flight.is_empty() {
            return;
        }
        self.ready.clear();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].due <= tick {
                self.ready.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        let ready = &mut self.ready;
        if ready.is_empty() {
            return;
        }
        ready.sort_unstable_by_key(|f| (f.due, f.ord));
        if self.plan.reorder_p > 0.0 {
            for pair in ready.chunks_mut(2) {
                if pair.len() == 2 && self.stream.fires(self.plan.reorder_p) {
                    pair.swap(0, 1);
                    self.stats.reordered += 1;
                    counter!("switch.chan.reordered").inc();
                }
            }
        }
        self.stats.delivered += ready.len() as u64;
        out.extend(ready.iter().map(|f| f.msg));
    }

    /// Whether messages are still in transit (delayed past the last tick).
    pub fn has_in_flight(&self) -> bool {
        !self.in_flight.is_empty()
    }

    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

/// The fallible controller → data-plane command channel.
pub struct ActionChannel {
    plan: FaultPlan,
    stream: FaultStream,
    /// Hardware TCAM entry budget; installs beyond it are rejected.
    tcam_capacity: usize,
    sends: u64,
    failures: u64,
}

impl ActionChannel {
    pub fn new(plan: FaultPlan, tcam_capacity: usize) -> Self {
        let stream = plan.stream(ChannelKind::Action);
        Self { plan, stream, tcam_capacity, sends: 0, failures: 0 }
    }

    /// Attempts to apply `action` to the data plane at `tick`.
    ///
    /// Errors are *transport or resource* failures the caller can retry:
    /// [`SwitchError::ChannelDown`] while an outage window covers `tick`
    /// or a sampled send failure fires, [`SwitchError::TcamFull`] when an
    /// install would exceed the TCAM budget (retryable because eviction
    /// removes may free space). On success the action has taken effect.
    pub fn send<D: DataPlane + ?Sized>(
        &mut self,
        dp: &mut D,
        action: ControlAction,
        tick: u64,
    ) -> Result<(), IguardError> {
        self.sends += 1;
        if self.plan.is_down(ChannelKind::Action, tick) {
            self.failures += 1;
            counter!("switch.chan.send_failed").inc();
            return Err(SwitchError::ChannelDown.into());
        }
        if !self.plan.is_none() && self.stream.fires(self.plan.send_fail_p) {
            self.failures += 1;
            counter!("switch.chan.send_failed").inc();
            return Err(SwitchError::ChannelDown.into());
        }
        if matches!(action, ControlAction::InstallBlacklist(_))
            && dp.blacklist_len() >= self.tcam_capacity
        {
            self.failures += 1;
            counter!("switch.chan.tcam_full").inc();
            return Err(SwitchError::TcamFull { capacity: self.tcam_capacity }.into());
        }
        dp.apply(action);
        Ok(())
    }

    /// Attempts to deliver a whole-ruleset transaction at `tick`.
    ///
    /// Subject to the same transport faults as [`ActionChannel::send`]
    /// (outage windows, sampled send failures) but *not* the TCAM-capacity
    /// check: a ruleset swap replaces the whitelist image wholesale rather
    /// than growing the blacklist, so the per-entry budget does not apply.
    /// Version errors ([`SwitchError::StaleRuleset`]) surface from the
    /// data plane itself; in-order replays are an idempotent `Ok`.
    pub fn send_ruleset<D: DataPlane + ?Sized>(
        &mut self,
        dp: &mut D,
        txn: &crate::ruleset::RulesetTxn,
        tick: u64,
    ) -> Result<(), IguardError> {
        self.sends += 1;
        if self.plan.is_down(ChannelKind::Action, tick) {
            self.failures += 1;
            counter!("switch.chan.send_failed").inc();
            return Err(SwitchError::ChannelDown.into());
        }
        if !self.plan.is_none() && self.stream.fires(self.plan.send_fail_p) {
            self.failures += 1;
            counter!("switch.chan.send_failed").inc();
            return Err(SwitchError::ChannelDown.into());
        }
        dp.apply_ruleset(txn).map_err(IguardError::from)
    }

    pub fn sends(&self) -> u64 {
        self.sends
    }

    pub fn failures(&self) -> u64 {
        self.failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Digest, Pipeline, PipelineConfig};
    use iguard_core::rules::{Hypercube, RuleSet};
    use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};

    fn accept_all(dim: usize) -> RuleSet {
        RuleSet {
            bounds: vec![(0.0, 1.0); dim],
            whitelist: vec![Hypercube {
                lo: vec![f32::NEG_INFINITY; dim],
                hi: vec![f32::INFINITY; dim],
            }],
            total_regions: 1,
        }
    }

    fn sd(seq: u64) -> SeqDigest {
        SeqDigest {
            seq,
            digest: Digest::new(FiveTuple::new(1, 2, 1000 + seq as u16, 80, PROTO_TCP), true),
        }
    }

    fn batch(n: u64) -> Vec<SeqDigest> {
        (0..n).map(sd).collect()
    }

    #[test]
    fn none_plan_is_transparent_and_ordered() {
        let mut ch = DigestChannel::new(FaultPlan::none());
        let msgs = batch(16);
        ch.offer(3, &msgs);
        let mut out = Vec::new();
        ch.deliver_into(3, &mut out);
        assert_eq!(out, msgs);
        assert!(!ch.has_in_flight());
        let s = ch.stats();
        assert_eq!((s.offered, s.delivered), (16, 16));
        assert_eq!((s.dropped, s.duplicated, s.reordered, s.delayed), (0, 0, 0, 0));
    }

    #[test]
    fn full_drop_loses_everything() {
        let mut ch = DigestChannel::new(FaultPlan::none().with_drop_p(1.0).with_seed(1));
        ch.offer(0, &batch(8));
        let mut out = Vec::new();
        ch.deliver_into(0, &mut out);
        assert!(out.is_empty());
        assert_eq!(ch.stats().dropped, 8);
    }

    #[test]
    fn full_duplication_delivers_two_copies() {
        let mut ch = DigestChannel::new(FaultPlan::none().with_duplicate_p(1.0).with_seed(1));
        ch.offer(0, &batch(4));
        let mut out = Vec::new();
        ch.deliver_into(0, &mut out);
        assert_eq!(out.len(), 8);
        // Copies are adjacent: same seq twice, in admission order.
        for (i, pair) in out.chunks(2).enumerate() {
            assert_eq!(pair[0].seq, i as u64);
            assert_eq!(pair[1].seq, i as u64);
        }
        assert_eq!(ch.stats().duplicated, 4);
    }

    #[test]
    fn delays_hold_messages_until_due() {
        let plan = FaultPlan::none().with_delay(1.0, 3).with_seed(7);
        let mut ch = DigestChannel::new(plan);
        ch.offer(10, &batch(32));
        let mut out = Vec::new();
        ch.deliver_into(10, &mut out);
        assert!(out.is_empty(), "everything is delayed at least one tick");
        assert!(ch.has_in_flight());
        let mut total = 0;
        for tick in 11..=13 {
            ch.deliver_into(tick, &mut out);
            total += out.len();
        }
        assert_eq!(total, 32, "all messages arrive within max delay");
        assert!(!ch.has_in_flight());
        assert_eq!(ch.stats().delayed, 32);
        // Delivery preserves seq order within a tick (due, admission).
        assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn outage_window_loses_offers_then_heals() {
        let plan = FaultPlan::none().with_outage(ChannelKind::Digest, 5, 8).with_seed(3);
        let mut ch = DigestChannel::new(plan);
        let mut out = Vec::new();
        ch.offer(5, &batch(4));
        ch.deliver_into(5, &mut out);
        assert!(out.is_empty());
        assert_eq!(ch.stats().dropped, 4);
        // Healed: tick 8 is outside the half-open window.
        ch.offer(8, &batch(4));
        ch.deliver_into(8, &mut out);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn reorder_swaps_adjacent_pairs_only() {
        let mut ch = DigestChannel::new(FaultPlan::none().with_reorder_p(1.0).with_seed(2));
        ch.offer(0, &batch(6));
        let mut out = Vec::new();
        ch.deliver_into(0, &mut out);
        let seqs: Vec<u64> = out.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![1, 0, 3, 2, 5, 4]);
        assert_eq!(ch.stats().reordered, 3);
    }

    #[test]
    fn same_plan_same_faults() {
        let mk = || DigestChannel::new(FaultPlan::lossy(99, 0.4));
        let run = |mut ch: DigestChannel| {
            let mut all = Vec::new();
            let mut out = Vec::new();
            for tick in 0..20u64 {
                ch.offer(tick, &batch(5));
                ch.deliver_into(tick, &mut out);
                all.extend(out.iter().map(|d| d.seq));
            }
            (all, ch.stats())
        };
        assert_eq!(run(mk()), run(mk()), "fault decisions must replay identically");
    }

    fn test_dp() -> Pipeline {
        Pipeline::new(PipelineConfig::default(), accept_all(13), accept_all(4))
    }

    #[test]
    fn action_send_applies_on_success() {
        let mut dp = test_dp();
        let mut ch = ActionChannel::new(FaultPlan::none(), usize::MAX);
        let five = sd(1).digest.five;
        ch.send(&mut dp, ControlAction::InstallBlacklist(five), 0).expect("clean channel");
        assert_eq!(dp.blacklist_len(), 1);
        assert_eq!((ch.sends(), ch.failures()), (1, 0));
    }

    #[test]
    fn action_send_fails_during_outage() {
        let mut dp = test_dp();
        let plan = FaultPlan::none().with_outage(ChannelKind::Action, 0, 10);
        let mut ch = ActionChannel::new(plan, usize::MAX);
        let five = sd(1).digest.five;
        let err = ch.send(&mut dp, ControlAction::InstallBlacklist(five), 4).unwrap_err();
        assert!(matches!(err, IguardError::Switch(SwitchError::ChannelDown)));
        assert_eq!(dp.blacklist_len(), 0);
        ch.send(&mut dp, ControlAction::InstallBlacklist(five), 10).expect("healed");
        assert_eq!(dp.blacklist_len(), 1);
    }

    #[test]
    fn action_send_rejects_install_when_tcam_full() {
        let mut dp = test_dp();
        let mut ch = ActionChannel::new(FaultPlan::none(), 1);
        ch.send(&mut dp, ControlAction::InstallBlacklist(sd(1).digest.five), 0).expect("fits");
        let err = ch.send(&mut dp, ControlAction::InstallBlacklist(sd(2).digest.five), 0);
        assert!(matches!(err, Err(IguardError::Switch(SwitchError::TcamFull { capacity: 1 }))));
        // Non-install actions still pass at capacity.
        ch.send(&mut dp, ControlAction::RemoveBlacklist(sd(1).digest.five), 0).expect("remove");
        assert_eq!(dp.blacklist_len(), 0);
    }

    #[test]
    fn ruleset_send_skips_tcam_budget_but_honours_outage() {
        use crate::ruleset::RulesetTxn;
        use crate::tcam::{RangeEntry, RangeTable};
        let mut table = RangeTable::new(vec![4, 4]);
        table.push(RangeEntry { fields: vec![(0, 7), (0, 15)], priority: 0 });
        let txn = RulesetTxn::full_install(1, &table, accept_all(13));

        let mut dp = test_dp();
        let plan = FaultPlan::none().with_outage(ChannelKind::Action, 0, 5);
        // Zero TCAM budget: ruleset swaps must still go through.
        let mut ch = ActionChannel::new(plan, 0);
        let err = ch.send_ruleset(&mut dp, &txn, 2).unwrap_err();
        assert!(matches!(err, IguardError::Switch(SwitchError::ChannelDown)));
        assert_eq!(dp.ruleset_version(), 0, "failed send must not advance the version");
        ch.send_ruleset(&mut dp, &txn, 5).expect("healed channel applies the swap");
        assert_eq!(dp.ruleset_version(), 1);
        // Retrying a delivered version is an idempotent no-op.
        ch.send_ruleset(&mut dp, &txn, 6).expect("replay is idempotent");
        assert_eq!(dp.ruleset_counters().replayed, 1);
        assert_eq!((ch.sends(), ch.failures()), (3, 1));
    }

    #[test]
    fn sampled_send_failures_are_deterministic() {
        let run = || {
            let mut dp = test_dp();
            let mut ch = ActionChannel::new(
                FaultPlan::none().with_send_fail_p(0.5).with_seed(11),
                usize::MAX,
            );
            (0..64u64)
                .map(|i| ch.send(&mut dp, ControlAction::ClearFlow(sd(i).digest.five), i).is_ok())
                .collect::<Vec<bool>>()
        };
        let a = run();
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
        assert_eq!(a, run());
    }
}
