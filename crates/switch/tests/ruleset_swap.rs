//! Ruleset-swap suite: the rule-diff engine and the transactional,
//! versioned swap path introduced by PR 8.
//!
//! Four families of assertions:
//!
//! 1. **Diff round-trip.** For random pairs of compiled tables,
//!    `diff(old, new)` applied on top of `old` reconstructs exactly the
//!    canonical form of `new`, and its churn is the multiset-minimal
//!    `|old| + |new| − 2·|old ∩ new|` — never a full reinstall when the
//!    tables share entries.
//! 2. **Hitless membership.** Swapping mid-stream (controller-free, at a
//!    random batch boundary) classifies every packet by exactly one
//!    complete ruleset: each verdict equals the pure-old run's or the
//!    pure-new run's verdict at the same position, with zero missed
//!    packets, and the pre-swap prefix is byte-identical to pure-old.
//! 3. **Convergence under faults.** A scripted swap riding the PR-4
//!    fault plans (lossy channel, action outage) retries until delivered
//!    and lands the same final blacklist, version and table as the
//!    fault-free scripted run.
//! 4. **Scale invariance.** The whole swap-under-chaos run is
//!    byte-identical at 1/2/8 shards × 1/2/8 workers.
//!
//! The convergence tests swap to a txn whose float whitelist is
//! *semantically identical* (only the TCAM image differs) so delivery
//! *timing* — which faults legitimately shift — cannot alter any flow
//! label, making exact fingerprint equality the right oracle.

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::table::FlowTableConfig;
use iguard_runtime::par::with_workers;
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;
use iguard_runtime::{ChannelKind, FaultPlan};
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::data_plane::DataPlane;
use iguard_switch::pipeline::{PacketVerdict, Pipeline, PipelineConfig, ProcessOutcome};
use iguard_switch::replay::{replay_chaos, ChaosConfig, ReplayConfig};
use iguard_switch::ruleset::{canonical_entries, RulesetDiff, RulesetTxn};
use iguard_switch::sharded::{ShardedPipeline, ShardedPipelineConfig};
use iguard_switch::tcam::{RangeEntry, RangeTable};
use iguard_synth::trace::Trace;

fn accept_all(dim: usize) -> RuleSet {
    RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

/// FL whitelist benign iff mean packet size (feature 2) < `cut`.
fn fl_mean_size_below(cut: f32) -> RuleSet {
    let mut lo = vec![f32::NEG_INFINITY; 13];
    let mut hi = vec![f32::INFINITY; 13];
    lo[2] = f32::NEG_INFINITY;
    hi[2] = cut;
    RuleSet {
        bounds: vec![(0.0, 2000.0); 13],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

/// Interleaved trace of `flows` flows × `pkts_per_flow` packets with
/// per-flow-constant wire length (flows with `f % 3 == 0` send 1400 B,
/// the rest 120 B), so each flow classifies identically on every
/// (re-)derivation.
fn stable_trace(flows: u16, pkts_per_flow: u64) -> Trace {
    let mut t = Trace::new();
    for i in 0..(flows as u64 * pkts_per_flow) {
        let f = (i % flows as u64) as u16;
        let malicious = f % 3 == 0;
        let len = if malicious { 1400 } else { 120 };
        let pkt = Packet {
            ts_ns: i * 1_000_000,
            five: FiveTuple::new(0x0A000001, 0xC0A80101, 30_000 + f, 80, PROTO_TCP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        t.push(pkt, malicious);
    }
    t
}

fn flow_cfg(slots: usize) -> PipelineConfig {
    PipelineConfig::default().with_flow_table(
        FlowTableConfig::default().with_slots_per_table(slots).with_pkt_threshold(4),
    )
}

fn rand_entry(rng: &mut Rng, fields: usize, bits: u8) -> RangeEntry {
    let max = (1u32 << bits) - 1;
    let mut fs = Vec::with_capacity(fields);
    for _ in 0..fields {
        let a = rng.gen_range(0..=max);
        let b = rng.gen_range(0..=max);
        fs.push((a.min(b), a.max(b)));
    }
    RangeEntry { fields: fs, priority: rng.gen_range(0..8) }
}

fn table_of(field_bits: &[u8], entries: &[RangeEntry]) -> RangeTable {
    let mut t = RangeTable::new(field_bits.to_vec());
    for e in entries {
        t.push(e.clone());
    }
    t
}

/// Multiset intersection size of two canonical entry lists.
fn common_entries(old: &RangeTable, new: &RangeTable) -> usize {
    let (a, b) = (canonical_entries(old), canonical_entries(new));
    let (mut i, mut j, mut shared) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let ka = (a[i].priority, &a[i].fields);
        let kb = (b[j].priority, &b[j].fields);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    shared
}

proptest_lite! {
    /// diff(old, new) applied on top of old reconstructs new exactly, and
    /// its churn is the multiset-minimal edit — strictly below a full
    /// reinstall whenever the tables share entries.
    fn diff_apply_roundtrips_random_table_pairs(rng) {
        let field_bits = vec![8u8, 8];
        let n_base = rng.gen_range(0..12usize);
        let n_old = rng.gen_range(0..8usize);
        let n_new = rng.gen_range(0..8usize);
        let base: Vec<RangeEntry> =
            (0..n_base).map(|_| rand_entry(rng, 2, 8)).collect();
        let mut old_entries = base.clone();
        old_entries.extend((0..n_old).map(|_| rand_entry(rng, 2, 8)));
        let mut new_entries = base;
        new_entries.extend((0..n_new).map(|_| rand_entry(rng, 2, 8)));
        let old = table_of(&field_bits, &old_entries);
        let new = table_of(&field_bits, &new_entries);

        let d = RulesetDiff::between(&old, &new);
        let shared = common_entries(&old, &new);
        assert_eq!(
            d.churn(),
            old_entries.len() + new_entries.len() - 2 * shared,
            "churn must be the multiset-minimal edit"
        );
        if shared > 0 {
            assert!(
                d.churn() < old_entries.len() + new_entries.len(),
                "shared entries must never be rewritten"
            );
        }

        // Round-trip through the real transactional path: bootstrap old
        // as v1, then apply the v2 delta, and compare installed tables.
        let mut dp = Pipeline::new(flow_cfg(512), accept_all(13), accept_all(4));
        dp.apply_ruleset(&RulesetTxn::full_install(1, &old, accept_all(13)))
            .expect("bootstrap install");
        assert_eq!(dp.ruleset_table().entries(), canonical_entries(&old).as_slice());
        dp.apply_ruleset(&RulesetTxn::diff(2, &old, &new, accept_all(13)))
            .expect("delta apply");
        assert_eq!(
            dp.ruleset_table().entries(),
            canonical_entries(&new).as_slice(),
            "applied delta must reconstruct the new table"
        );
        assert_eq!(dp.ruleset_version(), 2);
        let c = dp.ruleset_counters();
        assert_eq!(c.swaps, 2);
        assert_eq!(c.installed as usize, canonical_entries(&old).len() + d.installs.len());
        assert_eq!(c.removed as usize, d.removes.len());
    }

    /// Swapping the whitelist at a random batch boundary mid-stream:
    /// every verdict belongs to the pure-old or pure-new run at the same
    /// position, no packet is missed, and the pre-swap prefix is
    /// byte-identical to pure-old.
    fn mid_swap_verdicts_belong_to_old_or_new(rng, cases = 8) {
        const BATCH: usize = 64;
        let trace = stable_trace(30, 12);
        let n_batches = trace.packets.len().div_ceil(BATCH);
        let swap_at = rng.gen_range(1..n_batches);

        // Old generation drops heavy flows; the retrained generation
        // whitelists everything (the heavy mix became the new normal).
        let old_fl = fl_mean_size_below(800.0);
        let new_fl = accept_all(13);
        let mut table = RangeTable::new(vec![4, 4]);
        table.push(RangeEntry { fields: vec![(0, 15), (0, 15)], priority: 0 });
        let txn = RulesetTxn::full_install(1, &table, new_fl.clone());

        let run = |fl: RuleSet, swap: Option<usize>| -> Vec<PacketVerdict> {
            let mut dp = Pipeline::new(flow_cfg(4096), fl, accept_all(4));
            let mut outcomes: Vec<ProcessOutcome> = Vec::new();
            let mut verdicts = Vec::with_capacity(trace.packets.len());
            for (b, chunk) in trace.packets.chunks(BATCH).enumerate() {
                if swap == Some(b) {
                    dp.apply_ruleset(&txn).expect("mid-stream swap");
                }
                dp.process_batch(chunk, &mut outcomes);
                assert_eq!(outcomes.len(), chunk.len(), "no packet may be missed");
                verdicts.extend(outcomes.iter().map(|o| o.verdict));
            }
            verdicts
        };

        let old_run = run(old_fl.clone(), None);
        let new_run = run(new_fl.clone(), None);
        let swap_run = run(old_fl, Some(swap_at));
        assert_eq!(swap_run.len(), trace.packets.len());
        assert_ne!(old_run, new_run, "generations must disagree somewhere");
        let boundary = swap_at * BATCH;
        assert_eq!(
            &swap_run[..boundary],
            &old_run[..boundary],
            "pre-swap prefix must be byte-identical to the old generation"
        );
        for (i, v) in swap_run.iter().enumerate() {
            assert!(
                *v == old_run[i] || *v == new_run[i],
                "packet {i} (swap at batch {swap_at}) saw a verdict of neither generation"
            );
        }
    }
}

/// Everything a swap-under-chaos run makes observable, for exact equality.
#[derive(Debug, PartialEq)]
struct SwapFingerprint {
    confusion: (u64, u64, u64, u64),
    blacklist: Vec<FiveTuple>,
    version: u64,
    counters: iguard_switch::ruleset::RulesetCounters,
    table: Vec<RangeEntry>,
    swaps: u64,
    retries: u64,
}

/// The scripted two-transaction swap schedule used by the convergence and
/// scale tests: v1 bootstraps a table at tick 1, v2 swaps to a perturbed
/// table mid-trace. Both carry the same (semantically identical) float
/// whitelist, so delivery timing cannot alter flow labels.
fn swap_schedule(fl: &RuleSet) -> Vec<(u64, RulesetTxn)> {
    let mut t1 = RangeTable::new(vec![8, 8]);
    for p in 0..6u32 {
        t1.push(RangeEntry { fields: vec![(p * 10, p * 10 + 9), (0, 255)], priority: p });
    }
    let mut t2 = RangeTable::new(vec![8, 8]);
    // Shares three entries with t1; the rest is churned.
    for p in 0..3u32 {
        t2.push(RangeEntry { fields: vec![(p * 10, p * 10 + 9), (0, 255)], priority: p });
    }
    for p in 6..9u32 {
        t2.push(RangeEntry { fields: vec![(p * 7, p * 7 + 3), (1, 200)], priority: p });
    }
    let v2 = RulesetTxn::diff(2, &t1, &t2, fl.clone());
    assert!(v2.churn() > 0 && v2.churn() < t1.entries().len() + t2.entries().len());
    vec![(1, RulesetTxn::full_install(1, &t1, fl.clone())), (6, v2)]
}

fn run_swap_chaos(
    trace: &Trace,
    fl: RuleSet,
    shards: usize,
    workers: usize,
    chaos: &ChaosConfig,
) -> SwapFingerprint {
    with_workers(workers, || {
        let cfg = ShardedPipelineConfig::from(flow_cfg(4096)).with_shards(shards);
        let mut dp = ShardedPipeline::new(cfg, fl.clone(), accept_all(4));
        let mut controller = Controller::new(ControllerConfig::default());
        let r = replay_chaos(
            trace,
            &mut dp,
            &mut controller,
            &ReplayConfig::default().with_batch_size(64),
            chaos,
        );
        SwapFingerprint {
            confusion: (r.tp, r.fp, r.tn, r.fn_),
            blacklist: dp.blacklist_contents(),
            version: dp.ruleset_version(),
            counters: dp.ruleset_counters(),
            table: dp.ruleset_table().entries().to_vec(),
            swaps: r.ruleset_swaps,
            retries: r.ruleset_retries,
        }
    })
}

fn swap_chaos(plan: FaultPlan, fl: &RuleSet) -> ChaosConfig {
    let mut chaos = ChaosConfig::default().with_plan(plan).with_resync_interval(4);
    for (at, txn) in swap_schedule(fl) {
        chaos = chaos.with_ruleset_swap(at, txn);
    }
    chaos
}

#[test]
fn scripted_swap_converges_exactly_under_lossy_channel() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    let clean = run_swap_chaos(&trace, fl.clone(), 4, 2, &swap_chaos(FaultPlan::none(), &fl));
    assert_eq!(clean.version, 2, "both transactions must land fault-free");
    assert_eq!(clean.swaps, 2);
    assert_eq!(clean.retries, 0);
    assert!(!clean.blacklist.is_empty());

    for seed in [11u64, 47] {
        let faulty = run_swap_chaos(
            &trace,
            fl.clone(),
            4,
            2,
            &swap_chaos(FaultPlan::lossy(seed, 0.25), &fl),
        );
        assert_eq!(faulty.version, 2, "seed {seed}: both transactions must converge");
        assert_eq!(faulty.swaps, 2, "seed {seed}");
        assert_eq!(
            faulty.blacklist, clean.blacklist,
            "seed {seed}: blacklist must equal the fault-free scripted run"
        );
        assert_eq!(faulty.table, clean.table, "seed {seed}: installed tables must agree");
        // A lossy *action* channel can release a flow's storage while its
        // install retries, trading a bounded number of TPs for FNs (the
        // PR-4 invariant); it must never inflate FPs, and the swap must
        // not change that contract.
        assert_eq!(faulty.confusion.1, clean.confusion.1, "seed {seed}: no FP inflation");
        assert_eq!(
            faulty.confusion.0 + faulty.confusion.3,
            clean.confusion.0 + clean.confusion.3,
            "seed {seed}: malicious packet population must be conserved"
        );
        let fn_inflation = faulty.confusion.3.saturating_sub(clean.confusion.3);
        assert!(fn_inflation <= 16, "seed {seed}: FN inflation {fn_inflation} exceeds bound");
    }
}

#[test]
fn scripted_swap_converges_exactly_through_action_outage() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    let clean = run_swap_chaos(&trace, fl.clone(), 4, 2, &swap_chaos(FaultPlan::none(), &fl));
    // The action channel is dark over both scripted staging ticks; the
    // transactions survive on backoff and land after the heal.
    let plan = FaultPlan::none().with_outage(ChannelKind::Action, 0, 8).with_seed(3);
    let faulty = run_swap_chaos(&trace, fl.clone(), 4, 2, &swap_chaos(plan, &fl));
    assert!(faulty.retries > 0, "outage must force ruleset retries");
    assert_eq!(faulty.version, 2, "both transactions must land after the heal");
    assert_eq!(faulty.counters.stale, 0, "the queue must deliver v1 before offering v2");
    assert_eq!(faulty.blacklist, clean.blacklist);
    assert_eq!(faulty.table, clean.table);
    // Per-flow installs were also dark during the outage, so TPs may
    // trade for FNs exactly as in the PR-4 outage tests — never FPs.
    assert_eq!(faulty.confusion.1, clean.confusion.1, "no FP inflation");
    assert_eq!(
        faulty.confusion.0 + faulty.confusion.3,
        clean.confusion.0 + clean.confusion.3,
        "malicious packet population must be conserved"
    );
}

#[test]
fn swap_under_chaos_is_byte_identical_across_shards_and_workers() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    for plan in [FaultPlan::none(), FaultPlan::lossy(11, 0.2)] {
        let chaos = swap_chaos(plan, &fl);
        let base = run_swap_chaos(&trace, fl.clone(), 1, 1, &chaos);
        assert_eq!(base.version, 2);
        for (shards, workers) in [(2, 2), (8, 8), (8, 1), (1, 8)] {
            let got = run_swap_chaos(&trace, fl.clone(), shards, workers, &chaos);
            assert_eq!(got, base, "swap run diverged at {shards} shards / {workers} workers");
        }
    }
}

#[test]
fn replayed_and_stale_transactions_account_correctly() {
    let fl = accept_all(13);
    let mut dp = Pipeline::new(flow_cfg(512), fl.clone(), accept_all(4));
    let mut table = RangeTable::new(vec![4]);
    table.push(RangeEntry { fields: vec![(0, 15)], priority: 0 });
    let v1 = RulesetTxn::full_install(1, &table, fl.clone());
    dp.apply_ruleset(&v1).expect("v1");
    dp.apply_ruleset(&v1).expect("replay of v1 is a no-op");
    let v9 = RulesetTxn::full_install(9, &table, fl);
    let err = dp.apply_ruleset(&v9).expect_err("version gap must be rejected");
    assert_eq!(err, iguard_core::SwitchError::StaleRuleset { expected: 2, got: 9 });
    let c = dp.ruleset_counters();
    assert_eq!((c.swaps, c.replayed, c.stale), (1, 1, 1));
    assert_eq!(dp.ruleset_version(), 1, "rejected transaction must not advance the version");
}
