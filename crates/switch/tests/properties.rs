//! Property-based tests for the switch substrate.

use iguard_switch::tcam::{range_to_prefixes, FieldSpec};
use proptest::prelude::*;

proptest! {
    /// Prefix expansion covers the requested range exactly — every value
    /// inside matches some prefix, every value outside matches none.
    #[test]
    fn prefixes_cover_range_exactly(a in 0u32..256, b in 0u32..256) {
        let (lo, hi) = (a.min(b), a.max(b));
        let prefixes = range_to_prefixes(lo, hi, 8);
        prop_assert!(prefixes.len() <= 14, "8-bit worst case is 2w-2 = 14");
        for v in 0u32..256 {
            let matched = prefixes.iter().any(|&(val, mask)| v & mask == val & mask);
            prop_assert_eq!(matched, (lo..=hi).contains(&v), "value {}", v);
        }
    }

    /// Prefixes within one expansion never overlap (each value matches at
    /// most one prefix).
    #[test]
    fn prefixes_disjoint(a in 0u32..1024, b in 0u32..1024) {
        let (lo, hi) = (a.min(b), a.max(b));
        let prefixes = range_to_prefixes(lo, hi, 10);
        for v in lo..=hi {
            let hits = prefixes.iter().filter(|&&(val, mask)| v & mask == val & mask).count();
            prop_assert_eq!(hits, 1, "value {} matched {} prefixes", v, hits);
        }
    }

    /// Quantisation is monotone and saturating.
    #[test]
    fn quantize_monotone(bits in 4u8..=16, scale in 0.01f32..100.0, a in -10.0f32..1e5, b in -10.0f32..1e5) {
        let spec = FieldSpec::new(bits, scale);
        let (qa, qb) = (spec.quantize(a), spec.quantize(b));
        prop_assert!(qa <= spec.max_value() && qb <= spec.max_value());
        if a <= b {
            prop_assert!(qa <= qb, "quantize not monotone: q({a})={qa} > q({b})={qb}");
        }
    }
}
