//! Randomized-input tests for the switch substrate, on the in-repo
//! `proptest_lite` harness (seeded loop, no shrinking).

use iguard_runtime::proptest_lite;
use iguard_switch::tcam::{range_to_prefixes, FieldSpec};

proptest_lite! {
    /// Prefix expansion covers the requested range exactly — every value
    /// inside matches some prefix, every value outside matches none.
    fn prefixes_cover_range_exactly(rng) {
        let a = rng.gen_range(0u32..256);
        let b = rng.gen_range(0u32..256);
        let (lo, hi) = (a.min(b), a.max(b));
        let prefixes = range_to_prefixes(lo, hi, 8);
        assert!(prefixes.len() <= 14, "8-bit worst case is 2w-2 = 14");
        for v in 0u32..256 {
            let matched = prefixes.iter().any(|&(val, mask)| v & mask == val & mask);
            assert_eq!(matched, (lo..=hi).contains(&v), "value {}", v);
        }
    }

    /// Prefixes within one expansion never overlap (each value matches at
    /// most one prefix).
    fn prefixes_disjoint(rng) {
        let a = rng.gen_range(0u32..1024);
        let b = rng.gen_range(0u32..1024);
        let (lo, hi) = (a.min(b), a.max(b));
        let prefixes = range_to_prefixes(lo, hi, 10);
        for v in lo..=hi {
            let hits = prefixes.iter().filter(|&&(val, mask)| v & mask == val & mask).count();
            assert_eq!(hits, 1, "value {} matched {} prefixes", v, hits);
        }
    }

    /// Quantisation is monotone and saturating.
    fn quantize_monotone(rng) {
        let bits = rng.gen_range(4u8..=16);
        let scale = rng.gen_range(0.01f32..100.0);
        let a = rng.gen_range(-10.0f32..1e5);
        let b = rng.gen_range(-10.0f32..1e5);
        let spec = FieldSpec::new(bits, scale);
        let (qa, qb) = (spec.quantize(a), spec.quantize(b));
        assert!(qa <= spec.max_value() && qb <= spec.max_value());
        if a <= b {
            assert!(qa <= qb, "quantize not monotone: q({a})={qa} > q({b})={qb}");
        }
    }
}
