//! Sketch-assisted ↔ exact parity at scale.
//!
//! With an infinite budget and a promote threshold of 1 the
//! [`SketchedPipeline`] takes the exact admission path and must be a
//! fingerprint match for [`Pipeline`] — same verdicts, seq-tagged digest
//! stream, whitelist/path counters, blacklist, processed count — at any
//! batch size, worker count, or shard grouping of the reference. With a
//! finite budget the pipeline becomes lossy in one direction only: its
//! blacklist is a subset of the exact run's, false positives are
//! unchanged, and the false-negative inflation is bounded by the
//! eviction/absorption work the sketch actually performed (the PR-4
//! lossy-convergence shape, applied to memory pressure instead of channel
//! faults).

use std::collections::HashSet;

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_flow::features::SWITCH_FL_DIM;
use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP, PROTO_UDP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::sketch::CountMinSketch;
use iguard_flow::table::FlowTableConfig;
use iguard_runtime::par::with_workers;
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::pipeline::{
    ControlAction, PathCounters, Pipeline, PipelineConfig, ProcessOutcome, SeqDigest,
    WhitelistCounters,
};
use iguard_switch::replay::{replay, ReplayConfig, ReplayReport};
use iguard_switch::{DataPlane, SketchEviction, SketchedPipeline, SketchedPipelineConfig};
use iguard_synth::trace::Trace;
use iguard_synth::Zipf;

fn random_rules(rng: &mut Rng, dim: usize) -> RuleSet {
    let n = rng.gen_range(0usize..4);
    let whitelist = (0..n)
        .map(|_| {
            let mut lo = vec![f32::NEG_INFINITY; dim];
            let mut hi = vec![f32::INFINITY; dim];
            for d in 0..dim {
                if rng.gen_bool(0.5) {
                    lo[d] = rng.gen_range(-10.0f32..1000.0);
                }
                if rng.gen_bool(0.5) {
                    hi[d] = lo[d].max(0.0) + rng.gen_range(0.0f32..1500.0);
                }
            }
            Hypercube { lo, hi }
        })
        .collect();
    RuleSet { bounds: vec![(0.0, 2000.0); dim], whitelist, total_regions: n.max(1) }
}

fn random_pool(rng: &mut Rng, flows: usize) -> Vec<FiveTuple> {
    (0..flows)
        .map(|_| {
            FiveTuple::new(
                0x0A00_0000 | rng.gen_range(0u32..64),
                0xC0A8_0000 | rng.gen_range(0u32..64),
                rng.gen_range(1024u16..1024 + 32),
                [80u16, 443, 53][rng.gen_range(0..3usize)],
                if rng.gen_bool(0.7) { PROTO_TCP } else { PROTO_UDP },
            )
        })
        .collect()
}

fn random_packets(rng: &mut Rng, pool: &[FiveTuple], n: usize) -> Vec<Packet> {
    let mut ts = 0u64;
    (0..n)
        .map(|_| {
            ts += if rng.gen_bool(0.02) { 10_000_000_000 } else { rng.gen_range(0u64..3_000_000) };
            let mut five = pool[rng.gen_range(0..pool.len())];
            if rng.gen_bool(0.3) {
                five = five.reversed();
            }
            Packet {
                ts_ns: ts,
                five,
                wire_len: [0u16, 1, 64, 120, 1400, u16::MAX][rng.gen_range(0..6usize)],
                ttl: [0u8, 1, 64, 255][rng.gen_range(0..4usize)],
                flags: TcpFlags::default(),
            }
        })
        .collect()
}

type Observed =
    (Vec<ProcessOutcome>, Vec<SeqDigest>, WhitelistCounters, PathCounters, Vec<FiveTuple>, u64);

fn drive(dp: &mut dyn DataPlane, batches: &[Vec<Packet>], victims: &[FiveTuple]) -> Observed {
    let mut out = Vec::new();
    let mut digests = Vec::new();
    let mut buf = Vec::new();
    for (b, batch) in batches.iter().enumerate() {
        if b == batches.len() / 2 {
            for &v in victims {
                dp.apply(ControlAction::InstallBlacklist(v));
            }
            if let Some(&v) = victims.first() {
                dp.apply(ControlAction::RemoveBlacklist(v));
            }
        }
        dp.process_batch(batch, &mut buf);
        out.extend_from_slice(&buf);
        dp.drain_seq_digests_into(&mut digests);
    }
    (
        out,
        digests,
        dp.whitelist_counters(),
        dp.counters(),
        dp.blacklist_contents(),
        dp.packets_processed(),
    )
}

fn random_cfg(rng: &mut Rng) -> PipelineConfig {
    PipelineConfig::default()
        .with_flow_table(FlowTableConfig::default().with_pkt_threshold(rng.gen_range(2u64..6)))
        .with_drop_malicious(rng.gen_bool(0.8))
        .with_log_compress(rng.gen_bool(0.5))
}

/// Re-slices one packet stream into batches of `size`.
fn slices(pkts: &[Packet], size: usize) -> Vec<Vec<Packet>> {
    pkts.chunks(size.max(1)).map(|c| c.to_vec()).collect()
}

proptest_lite! {
    /// Infinite budget + promote threshold 1 (the defaults): the sketched
    /// backend is the exact pipeline. Fingerprints match at every worker
    /// count, and its sketch stats report the unbudgeted configuration.
    fn exact_mode_matches_pipeline_everywhere(rng) {
        let cfg = random_cfg(rng);
        let fl = random_rules(rng, SWITCH_FL_DIM);
        let pl = random_rules(rng, 4);
        let flows = rng.gen_range(4usize..24);
        let pool = random_pool(rng, flows);
        let batches: Vec<Vec<Packet>> = (0..rng.gen_range(2usize..6))
            .map(|_| {
                let n = rng.gen_range(1usize..200);
                random_packets(rng, &pool, n)
            })
            .collect();
        let victims: Vec<FiveTuple> =
            (0..3).map(|_| pool[rng.gen_range(0..pool.len())]).collect();

        let mut exact = Pipeline::new(cfg, fl.clone(), pl.clone());
        let want = drive(&mut exact, &batches, &victims);

        for workers in [1usize, 2, 8] {
            let (got, stats) = with_workers(workers, || {
                let scfg = SketchedPipelineConfig::default().with_pipeline(cfg);
                let mut dp = SketchedPipeline::new(scfg, fl.clone(), pl.clone());
                let obs = drive(&mut dp, &batches, &victims);
                (obs, dp.sketch_stats().expect("sketched backend reports stats"))
            });
            assert_eq!(got, want, "sketched/workers({workers}) != exact Pipeline");
            assert_eq!(stats.budget_bytes, None);
            assert_eq!(stats.max_tracked, usize::MAX);
            assert_eq!(stats.evicted, 0, "nothing may evict without a budget");
            assert_eq!(stats.absorbed, 0, "threshold 1 must bypass the sketch");
        }
    }

    /// The sketched walk is per-packet, so even a *budgeted* run is
    /// batch-size invariant: one stream sliced at 1 / prime / >chunk sizes
    /// yields identical fingerprints (no mid-stream installs, so feedback
    /// granularity is out of the picture).
    fn sketched_fingerprint_is_batch_size_invariant(rng, cases = 10) {
        let cfg = random_cfg(rng);
        let fl = random_rules(rng, SWITCH_FL_DIM);
        let pl = random_rules(rng, 4);
        let pool = random_pool(rng, 32);
        let n = rng.gen_range(600usize..1500);
        let pkts = random_packets(rng, &pool, n);
        let scfg = SketchedPipelineConfig::default()
            .with_pipeline(cfg)
            .with_budget_bytes(Some(8 * iguard_flow::table::FlowShard::slot_bytes()))
            .with_promote_threshold(2)
            .with_eviction(SketchEviction::Lru);

        let run = |size: usize| {
            let mut dp = SketchedPipeline::new(scfg, fl.clone(), pl.clone());
            drive(&mut dp, &slices(&pkts, size), &[])
        };
        let want = run(1);
        for size in [97usize, 1024 + 7, pkts.len()] {
            assert_eq!(run(size), want, "budgeted sketched run differs at batch {size}");
        }
    }

    /// Every eviction policy holds the budget invariant after every batch,
    /// and each policy's run is a deterministic function of its seed.
    fn eviction_policies_hold_budget_and_are_deterministic(rng, cases = 8) {
        let cfg = PipelineConfig::default()
            .with_flow_table(FlowTableConfig::default().with_pkt_threshold(3));
        let fl = random_rules(rng, SWITCH_FL_DIM);
        let pl = random_rules(rng, 4);
        let pool = random_pool(rng, 200);
        let pkts = random_packets(rng, &pool, 1200);
        let slots = rng.gen_range(2usize..12);
        let seed = rng.next_u64();

        for policy in
            [SketchEviction::Fifo, SketchEviction::Lru, SketchEviction::Random, SketchEviction::TwoQ]
        {
            let scfg = SketchedPipelineConfig::default()
                .with_pipeline(cfg)
                .with_budget_bytes(Some(slots * iguard_flow::table::FlowShard::slot_bytes()))
                .with_eviction(policy)
                .with_seed(seed);
            let run = || {
                let mut dp = SketchedPipeline::new(scfg, fl.clone(), pl.clone());
                let mut buf = Vec::new();
                let mut digests = Vec::new();
                for batch in pkts.chunks(64) {
                    dp.process_batch(batch, &mut buf);
                    let stats = dp.sketch_stats().unwrap();
                    assert!(
                        stats.tracked <= stats.max_tracked,
                        "{policy:?}: tracked {} over budget {}",
                        stats.tracked,
                        stats.max_tracked
                    );
                    assert_eq!(stats.max_tracked, slots);
                    assert!(stats.resident_bytes <= slots * iguard_flow::table::FlowShard::slot_bytes());
                    dp.drain_seq_digests_into(&mut digests);
                }
                (digests, dp.counters(), dp.sketch_stats().unwrap())
            };
            assert_eq!(run(), run(), "{policy:?} is not seed-deterministic");
        }
    }
}

/// Constant-rate, constant-size flows: every observation window of a flow
/// produces the same feature vector, so classification is invariant to
/// eviction restarts — the precondition of the exact-FP claim.
fn uniform_trace(benign: usize, malicious: usize, pkts_per_flow: usize) -> Trace {
    let mut packets = Vec::new();
    let mut labels = Vec::new();
    for f in 0..(benign + malicious) {
        let bad = f >= benign;
        let five = FiveTuple::new(
            0x0A00_0100 + f as u32,
            0xC0A8_0001,
            2000 + f as u16,
            if bad { 9999 } else { 443 },
            PROTO_UDP,
        );
        for p in 0..pkts_per_flow {
            packets.push(Packet {
                // Flows fully interleaved (round-robin) to force churn.
                ts_ns: (p * (benign + malicious) + f) as u64 * 1_000_000,
                five,
                wire_len: if bad { 1200 } else { 64 },
                ttl: 64,
                flags: TcpFlags::default(),
            });
            labels.push(bad);
        }
    }
    packets.sort_by_key(|p| p.ts_ns);
    // Labels follow the same (ts, flow) ordering: rebuild from dst_port.
    let labels = packets.iter().map(|p| p.five.canonical().dst_port == 9999).collect();
    Trace { packets, labels }
}

fn mean_size_whitelist(cut: f32) -> RuleSet {
    let lo = vec![f32::NEG_INFINITY; SWITCH_FL_DIM];
    let mut hi = vec![f32::INFINITY; SWITCH_FL_DIM];
    hi[2] = cut; // feature 2 = mean packet size
    RuleSet {
        bounds: vec![(0.0, 2000.0); SWITCH_FL_DIM],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

fn accept_all(dim: usize) -> RuleSet {
    RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig::default()
        .with_flow_table(FlowTableConfig::default().with_pkt_threshold(4))
        .with_drop_malicious(true)
}

fn replay_budget(
    trace: &Trace,
    budget_slots: Option<usize>,
    promote_threshold: u32,
) -> (ReplayReport, Vec<FiveTuple>, iguard_switch::SketchStats) {
    let scfg = SketchedPipelineConfig::default()
        .with_pipeline(pipeline_cfg())
        .with_budget_bytes(budget_slots.map(|s| s * iguard_flow::table::FlowShard::slot_bytes()))
        .with_promote_threshold(promote_threshold)
        .with_eviction(SketchEviction::Lru);
    let mut dp = SketchedPipeline::new(scfg, mean_size_whitelist(200.0), accept_all(4));
    let mut c = Controller::new(ControllerConfig::default());
    let cfg = ReplayConfig::default().with_batch_size(8);
    let r = replay(trace, &mut dp, &mut c, &cfg);
    let stats = dp.sketch_stats().unwrap();
    (r, dp.blacklist_contents(), stats)
}

/// The PR-4 lossy-convergence shape under memory pressure: a finite
/// budget may only *miss* malicious flows (subset blacklist, inflated
/// FN), never invent detections (exact FP equality), and the inflation is
/// bounded by the work the sketch actually shed.
#[test]
fn finite_budget_is_one_sided_lossy() {
    let trace = uniform_trace(40, 24, 12);
    let (exact, exact_bl, exact_stats) = replay_budget(&trace, None, 1);
    assert_eq!(exact_stats.evicted, 0);
    assert!(exact.tp > 0, "exact run must detect the large-packet flows");
    assert_eq!(exact.fp, 0, "constant 64-byte flows are whitelisted");
    assert_eq!(exact_bl.len(), 24, "every malicious flow blacklisted exactly once");

    for (slots, promote) in [(8usize, 1u32), (8, 3), (16, 2)] {
        let (lossy, lossy_bl, stats) = replay_budget(&trace, Some(slots), promote);
        let exact_set: HashSet<FiveTuple> = exact_bl.iter().copied().collect();
        assert!(
            lossy_bl.iter().all(|f| exact_set.contains(f)),
            "budget({slots}) blacklist must be a subset of the exact blacklist"
        );
        assert_eq!(lossy.fp, exact.fp, "budget({slots}) invented false positives");
        assert_eq!(
            lossy.tp + lossy.fn_,
            exact.tp + exact.fn_,
            "ground truth is fixed: positives must be conserved"
        );
        assert!(lossy.fn_ >= exact.fn_, "a budget cannot reduce false negatives here");
        let pkt_threshold = 4u64;
        let bound = exact.fn_ + stats.evicted * pkt_threshold + stats.absorbed;
        assert!(
            lossy.fn_ <= bound,
            "budget({slots}/p{promote}) fn {} exceeds shed-work bound {} \
             (evicted {}, absorbed {})",
            lossy.fn_,
            bound,
            stats.evicted,
            stats.absorbed
        );
    }
}

/// 10k distinct flows forced through a 16-slot budget: heavy churn, no
/// panics, no digest sequence tag ever reused.
#[test]
fn ten_thousand_flows_through_sixteen_slots() {
    let mut rng = Rng::seed_from_u64(0xD15C);
    let pool = random_pool(&mut rng, 10_000);
    // Widen the pool beyond random_pool's 64×64 address grid so the flows
    // are genuinely distinct.
    let pool: Vec<FiveTuple> = pool
        .iter()
        .enumerate()
        .map(|(i, f)| {
            FiveTuple::new(0x0A00_0000 + i as u32, f.dst_ip, f.src_port, f.dst_port, f.proto)
        })
        .collect();
    let pkts = random_packets(&mut rng, &pool, 40_000);
    let scfg = SketchedPipelineConfig::default()
        .with_pipeline(pipeline_cfg())
        .with_budget_bytes(Some(16 * iguard_flow::table::FlowShard::slot_bytes()))
        .with_promote_threshold(2)
        .with_eviction(SketchEviction::TwoQ);
    let mut dp = SketchedPipeline::new(scfg, mean_size_whitelist(200.0), accept_all(4));
    let mut buf = Vec::new();
    let mut digests: Vec<SeqDigest> = Vec::new();
    for batch in pkts.chunks(512) {
        dp.process_batch(batch, &mut buf);
        dp.drain_seq_digests_into(&mut digests);
        let stats = dp.sketch_stats().unwrap();
        assert!(stats.tracked <= 16, "tracked {} breaches the 16-slot budget", stats.tracked);
    }
    let mut seqs: Vec<u64> = digests.iter().map(|d| d.seq).collect();
    let n = seqs.len();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), n, "digest sequence tags must never repeat");
    assert_eq!(dp.packets_processed(), pkts.len() as u64);
    let stats = dp.sketch_stats().unwrap();
    assert!(stats.evicted > 0, "churn workload must actually evict");
    assert!(stats.absorbed > 0, "short flows must be absorbed by the sketch");
}

/// The count–min ε/δ guarantee on an adversarial (maximally skewed) Zipf
/// stream generated by the synth crate's sampler: estimates only ever
/// overestimate, and the fraction of keys overestimating by more than
/// ε·N stays within a generous multiple of δ.
#[test]
fn cms_bound_holds_on_adversarial_zipf_stream() {
    let mut rng = Rng::seed_from_u64(0x21BF);
    let users = 4096u64;
    let zipf = Zipf::new(users, 1.3);
    let mut cms = CountMinSketch::with_error_bound(0.01, 0.01, 99);
    let mut truth: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let total = 60_000u64;
    for _ in 0..total {
        let rank = zipf.sample(&mut rng) as u32;
        let key = FiveTuple::new(0x0A00_0000 + rank, 0xC0A8_0001, 1234, 80, PROTO_UDP);
        cms.increment(&key);
        *truth.entry(rank).or_insert(0) += 1;
    }
    let eps_n = cms.error_bound(total);
    let mut violations = 0usize;
    for (&rank, &count) in &truth {
        let key = FiveTuple::new(0x0A00_0000 + rank, 0xC0A8_0001, 1234, 80, PROTO_UDP);
        let est = cms.estimate(&key);
        assert!(est >= count, "CMS underestimated rank {rank}: {est} < {count}");
        if u64::from(est - count) > eps_n {
            violations += 1;
        }
    }
    let frac = violations as f64 / truth.len() as f64;
    assert!(frac <= 4.0 * cms.delta(), "violation fraction {frac} vs δ {}", cms.delta());
}
