//! Property: sequence-tagged digest processing is idempotent. A digest
//! stream with injected duplicates (same sequence tag, re-delivered at a
//! later point within the dedup window) must produce the *exact same
//! action stream* — and therefore the same installed blacklist and the
//! same data-plane effects — as the deduplicated stream, under both FIFO
//! and LRU eviction, regardless of how the stream is chunked into
//! controller calls.

use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;
use iguard_switch::controller::{Controller, ControllerConfig, EvictionPolicy};
use iguard_switch::data_plane::DataPlane;
use iguard_switch::pipeline::{ControlAction, Digest, Pipeline, PipelineConfig, SeqDigest};

fn five(flow: u16) -> FiveTuple {
    FiveTuple::new(0x0A000001, 0xC0A80101, 20_000 + flow, 443, PROTO_TCP)
}

fn accept_all(dim: usize) -> iguard_core::rules::RuleSet {
    iguard_core::rules::RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![iguard_core::rules::Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

/// A pipeline with one resident (unclassified) flow per id, so ClearFlow
/// actions have observable effect on occupancy.
fn preloaded_pipeline(n_flows: u16) -> Pipeline {
    let mut p = Pipeline::new(PipelineConfig::default(), accept_all(13), accept_all(4));
    let mut out = Vec::new();
    for f in 0..n_flows {
        let pkt = Packet {
            ts_ns: f as u64 * 1_000,
            five: five(f),
            wire_len: 200,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        p.process_batch(std::slice::from_ref(&pkt), &mut out);
    }
    p
}

/// Feeds `stream` to a fresh controller in random-sized chunks, applying
/// every action to `dp`; returns the concatenated action stream.
fn drive(
    stream: &[SeqDigest],
    policy: EvictionPolicy,
    capacity: usize,
    dp: &mut Pipeline,
    rng: &mut Rng,
) -> Vec<ControlAction> {
    let mut controller = Controller::new(ControllerConfig {
        blacklist_capacity: capacity,
        policy,
        ..Default::default()
    });
    let mut all = Vec::new();
    let mut actions = Vec::new();
    let mut start = 0;
    while start < stream.len() {
        let end = (start + rng.gen_range(1usize..=16)).min(stream.len());
        controller.process_seq_digests_into(&stream[start..end], &mut actions);
        for &a in &actions {
            dp.apply(a);
        }
        all.extend_from_slice(&actions);
        start = end;
    }
    assert_eq!(controller.installed_len(), dp.blacklist_len());
    all
}

fn check(rng: &mut Rng, policy: EvictionPolicy) {
    let n_flows = rng.gen_range(4u16..32);
    let len = rng.gen_range(20u64..150);
    // Base stream: unique sequence tags, random flows and labels.
    let base: Vec<SeqDigest> = (0..len)
        .map(|seq| SeqDigest {
            seq,
            digest: Digest::new(five(rng.gen_range(0u16..n_flows)), rng.gen_bool(0.5)),
        })
        .collect();
    // Duplicated stream: every message delivered, plus immediate
    // re-deliveries and far re-deliveries of random earlier messages
    // (all within the default dedup window).
    let mut dup = Vec::new();
    for (i, &sd) in base.iter().enumerate() {
        dup.push(sd);
        if rng.gen_bool(0.3) {
            dup.push(sd);
        }
        if i > 0 && rng.gen_bool(0.2) {
            let j = rng.gen_range(0..i as u64) as usize;
            dup.push(base[j]);
        }
    }
    // Small capacity so eviction churn would expose any dedup leak into
    // recency/queue state.
    let capacity = rng.gen_range(2usize..8);

    let mut dp_dup = preloaded_pipeline(n_flows);
    let mut dp_clean = preloaded_pipeline(n_flows);
    let actions_dup = drive(&dup, policy, capacity, &mut dp_dup, rng);
    let actions_clean = drive(&base, policy, capacity, &mut dp_clean, rng);

    assert_eq!(actions_dup, actions_clean, "duplicates must not alter the action stream");
    assert_eq!(dp_dup.blacklist_contents(), dp_clean.blacklist_contents());
    assert_eq!(
        dp_dup.flow_table_stats().occupancy,
        dp_clean.flow_table_stats().occupancy,
        "storage releases must be identical"
    );
}

proptest_lite! {
    /// FIFO: duplicate digests change nothing observable.
    fn duplicated_digests_are_idempotent_fifo(rng) {
        check(rng, EvictionPolicy::Fifo);
    }

    /// LRU: duplicate digests change nothing observable — in particular
    /// they must not refresh recency stamps.
    fn duplicated_digests_are_idempotent_lru(rng) {
        check(rng, EvictionPolicy::Lru);
    }
}
