//! Exhaustive TCAM ↔ float parity sweeps (PR 5, satellite 4).
//!
//! The range→TCAM compiler is grid-exact: an installed entry matches key
//! `k` iff its source float cube contains the canonical grid point
//! `dequantize(k)` per field. That pins four implementations to one truth
//! table over the *entire* quantized grid:
//!
//! * the float linear scan ([`RuleSet::lookup`]),
//! * the compiled float index ([`iguard_core::RuleIndex`]),
//! * the quantized linear scan ([`RangeTable::lookup_idx`]),
//! * the compiled quantized index ([`RangeIndex`]).
//!
//! The sweeps below walk every representable key of small grids (2-D
//! 8-bit = 65 536 keys, 3-D 6-bit = 262 144 keys) over seeded random rule
//! sets that deliberately include fractional bounds, infinite bounds,
//! sub-quantum widths, and fractional scales, and assert all four agree
//! bit-for-bit — under both 1 and 8 runtime workers, with the sweep
//! itself fanned out over the worker pool so the parallel path is the one
//! being exercised.

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_runtime::par::{par_map_vec, with_workers};
use iguard_runtime::rng::Rng;
use iguard_switch::rule_index::RangeIndex;
use iguard_switch::tcam::{compile_ruleset, FieldSpec};

/// A random rule set over `n_dims` dimensions with adversarial bound
/// shapes: fractional floats, occasional infinite/zero bounds, and a
/// deliberate fraction of cubes thinner than one quantum of `specs`.
fn random_ruleset(n_dims: usize, n_rules: usize, specs: &[FieldSpec], rng: &mut Rng) -> RuleSet {
    let mut whitelist = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let mut lo = Vec::with_capacity(n_dims);
        let mut hi = Vec::with_capacity(n_dims);
        for spec in specs.iter().take(n_dims) {
            let domain_hi = spec.dequantize(spec.max_value());
            let quantum = 1.0 / spec.scale;
            let a = rng.gen_range(-0.1_f32 * domain_hi..1.1 * domain_hi);
            let (l, h) = if rng.gen_bool(0.10) {
                // Sub-quantum sliver: thinner than one grid step, so it may
                // cover no representable point at all.
                (a, a + quantum * rng.gen_range(0.05_f32..0.9))
            } else if rng.gen_bool(0.10) {
                // Unbounded above (the decomposition emits these at the
                // domain edge).
                (a, f32::INFINITY)
            } else if rng.gen_bool(0.05) {
                // Unbounded below.
                (f32::NEG_INFINITY, a)
            } else {
                let b = rng.gen_range(-0.1_f32 * domain_hi..1.2 * domain_hi);
                (a.min(b), a.max(b) + quantum * rng.gen_range(0.0_f32..4.0))
            };
            lo.push(l);
            hi.push(h);
        }
        whitelist.push(Hypercube { lo, hi });
    }
    let bounds = specs.iter().take(n_dims).map(|s| (0.0, s.dequantize(s.max_value()))).collect();
    RuleSet { bounds, whitelist, total_regions: n_rules }
}

/// Walks every key of the grid and asserts the four lookup paths agree.
/// The key space is chunked and mapped on the runtime worker pool, so at
/// `IGUARD_WORKERS=8` the sweep itself runs in parallel.
fn sweep_full_grid(rules: &RuleSet, specs: &[FieldSpec], label: &str) {
    let table = compile_ruleset(rules, specs);
    assert_eq!(
        table.len() as u64 + table.skipped_empty,
        rules.len() as u64,
        "{label}: every source cube is installed or explicitly skipped"
    );
    let range_index = RangeIndex::build(&table);
    let float_index = rules.build_index();

    let dims: Vec<u64> = specs.iter().map(|s| s.max_value() as u64 + 1).collect();
    let total: u64 = dims.iter().product();
    const CHUNK: u64 = 4096;
    let starts: Vec<u64> = (0..total).step_by(CHUNK as usize).collect();
    let mismatches: usize = par_map_vec(starts, |start| {
        let mut bad = 0usize;
        let mut key = vec![0u32; dims.len()];
        let mut deq = vec![0f32; dims.len()];
        let mut qscratch = Vec::new();
        let mut fscratch = Vec::new();
        for flat in start..(start + CHUNK).min(total) {
            let mut rem = flat;
            for (d, &extent) in dims.iter().enumerate() {
                key[d] = (rem % extent) as u32;
                rem /= extent;
                deq[d] = specs[d].dequantize(key[d]);
            }
            // Quantized paths return an entry position; map it through the
            // entry's priority (= source cube index) to compare against the
            // float paths, which return cube indices directly.
            let scan = table.lookup_idx(&key);
            let indexed = range_index.lookup(&key, &mut qscratch);
            let cube_q = scan.map(|i| table.entries()[i].priority as usize);
            let cube_f = rules.lookup(&deq);
            let cube_fi = float_index.lookup(&deq, &mut fscratch);
            if scan != indexed || cube_q != cube_f || cube_f != cube_fi {
                bad += 1;
                if bad == 1 {
                    eprintln!(
                        "{label}: key {key:?} (deq {deq:?}): scan {scan:?} indexed {indexed:?} \
                         cube_q {cube_q:?} float {cube_f:?} float_indexed {cube_fi:?}"
                    );
                }
            }
        }
        bad
    })
    .into_iter()
    .sum();
    assert_eq!(mismatches, 0, "{label}: {mismatches} of {total} grid keys disagree");
}

#[test]
fn exhaustive_grid_parity_2d_8bit() {
    // Fractional scales on purpose: boundary rounding is where the old
    // compiler diverged from the float rules.
    let specs = vec![FieldSpec::new(8, 3.7), FieldSpec::new(8, 1000.0)];
    for seed in [1u64, 2, 3] {
        let mut rng = Rng::seed_from_u64(seed);
        let rules = random_ruleset(2, 40, &specs, &mut rng);
        for workers in [1usize, 8] {
            with_workers(workers, || {
                sweep_full_grid(&rules, &specs, &format!("2d seed {seed} workers {workers}"))
            });
        }
    }
}

#[test]
fn exhaustive_grid_parity_3d_6bit() {
    let specs = vec![FieldSpec::new(6, 0.063), FieldSpec::new(6, 17.3), FieldSpec::new(6, 63.0)];
    for seed in [7u64, 8] {
        let mut rng = Rng::seed_from_u64(seed);
        let rules = random_ruleset(3, 60, &specs, &mut rng);
        for workers in [1usize, 8] {
            with_workers(workers, || {
                sweep_full_grid(&rules, &specs, &format!("3d seed {seed} workers {workers}"))
            });
        }
    }
}

/// Domain-edge parity (satellite 1): a cube whose upper bound coincides
/// exactly with the top representable grid value must stay half-open —
/// the old compiler's saturation made it inclusive there.
#[test]
fn domain_edge_keys_agree() {
    let specs = vec![FieldSpec::new(8, 1.0), FieldSpec::new(8, 2.0)];
    let top0 = specs[0].dequantize(specs[0].max_value()); // 255.0
    let top1 = specs[1].dequantize(specs[1].max_value()); // 127.5
    let rules = RuleSet {
        bounds: vec![(0.0, top0), (0.0, top1)],
        whitelist: vec![
            Hypercube { lo: vec![10.0, 0.0], hi: vec![top0, top1] },
            Hypercube { lo: vec![0.0, 0.0], hi: vec![f32::INFINITY, f32::INFINITY] },
        ],
        total_regions: 2,
    };
    sweep_full_grid(&rules, &specs, "domain edge");
    let table = compile_ruleset(&rules, &specs);
    // Key (255, 255) dequantizes to (top0, top1): outside the half-open
    // first cube in both dims, inside the unbounded second cube.
    let edge = vec![specs[0].max_value(), specs[1].max_value()];
    assert_eq!(table.lookup_idx(&edge).map(|i| table.entries()[i].priority), Some(1));
}

/// Sub-quantum cubes (satellite 3): a cube covering no grid point is
/// rejected explicitly and accounted, never installed as an over-matching
/// point range.
#[test]
fn sub_quantum_cubes_are_rejected_not_widened() {
    let specs = vec![FieldSpec::new(8, 1.0)];
    let rules = RuleSet {
        bounds: vec![(0.0, 255.0)],
        whitelist: vec![
            Hypercube { lo: vec![10.2], hi: vec![10.9] }, // no integer inside
            Hypercube { lo: vec![20.0], hi: vec![21.0] }, // exactly one key: 20
        ],
        total_regions: 2,
    };
    let table = compile_ruleset(&rules, &specs);
    assert_eq!(table.len(), 1);
    assert_eq!(table.skipped_empty, 1);
    assert_eq!(table.lookup_idx(&[10]), None, "the sliver must not capture key 10");
    assert_eq!(table.lookup_idx(&[20]).map(|i| table.entries()[i].priority), Some(1));
    assert_eq!(table.lookup_idx(&[21]), None, "upper bound stays exclusive");
    sweep_full_grid(&rules, &specs, "sub-quantum");
}
