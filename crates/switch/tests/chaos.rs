//! Chaos suite: the control loop must stay correct — and deterministic —
//! when the digest and action channels drop, duplicate, reorder and delay
//! messages, when whole channels black out, and when the controller
//! crashes mid-run.
//!
//! Three families of assertions:
//!
//! 1. **Byte-identity of the ideal loop.** `replay_chaos` with
//!    `FaultPlan::none()` equals plain `replay` exactly, at every
//!    shard/worker combination, with every chaos counter at zero.
//! 2. **Determinism of faulty runs.** For a fixed fault seed, replay
//!    output (confusion, blacklist, fault counters) is byte-identical
//!    across 1/2/8 shards and 1/2/8 workers — the fault draws ride the
//!    merged digest stream, which PR 3 made backend-invariant.
//! 3. **Eventual convergence.** After the channel heals (or the
//!    controller recovers from a crash), label resync restores the exact
//!    fault-free blacklist, and the confusion matrix equals the
//!    fault-free run — classifications live in data-plane flow labels,
//!    so lost digests delay installs but never change verdicts.
//!
//! Convergence tests use a constructed trace with per-flow-constant
//! packet sizes and a mean-size FL rule, so a flow's classification is
//! stable no matter when (or how often) it is re-derived.

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::table::FlowTableConfig;
use iguard_runtime::par::with_workers;
use iguard_runtime::rng::Rng;
use iguard_runtime::{ChannelKind, FaultPlan};
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::data_plane::DataPlane;
use iguard_switch::pipeline::PipelineConfig;
use iguard_switch::replay::{
    replay, replay_chaos, ChaosConfig, CrashRecovery, ReplayConfig, ReplayReport,
};
use iguard_switch::sharded::{ShardedPipeline, ShardedPipelineConfig};
use iguard_synth::attacks::Attack;
use iguard_synth::benign::benign_trace;
use iguard_synth::trace::Trace;

fn accept_all(dim: usize) -> RuleSet {
    RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

/// FL whitelist benign iff mean packet size (feature 2) < `cut` — with
/// per-flow-constant sizes this classifies each flow identically on every
/// (re-)derivation, which the exact convergence tests rely on.
fn fl_mean_size_below(cut: f32) -> RuleSet {
    let mut lo = vec![f32::NEG_INFINITY; 13];
    let mut hi = vec![f32::INFINITY; 13];
    lo[2] = f32::NEG_INFINITY;
    hi[2] = cut;
    RuleSet {
        bounds: vec![(0.0, 2000.0); 13],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

/// FL whitelist benign iff std of IPD (feature 10) above a floor — the
/// mixed-trace rule used by the determinism grid.
fn fl_ipd_jitter_above(floor: f32) -> RuleSet {
    let mut lo = vec![f32::NEG_INFINITY; 13];
    let hi = vec![f32::INFINITY; 13];
    lo[10] = floor;
    RuleSet {
        bounds: vec![(0.0, 2000.0); 13],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

/// A mixed benign + flood + scan trace of at least 10k packets.
fn mixed_trace() -> Trace {
    let mut rng = Rng::seed_from_u64(42);
    let benign = benign_trace(300, 8.0, &mut rng);
    let flood = Attack::UdpDdos.trace(60, 8.0, &mut rng);
    let scan = Attack::OsScan.trace(40, 8.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood, scan]);
    assert!(trace.packets.len() >= 10_000, "trace too small: {}", trace.packets.len());
    trace
}

/// Interleaved trace of `flows` flows × `pkts_per_flow` packets with
/// per-flow-constant wire length: flows with `f % 3 == 0` send 1400 B
/// (malicious under the mean-size rule), the rest 120 B.
fn stable_trace(flows: u16, pkts_per_flow: u64) -> Trace {
    let mut t = Trace::new();
    for i in 0..(flows as u64 * pkts_per_flow) {
        let f = (i % flows as u64) as u16;
        let malicious = f % 3 == 0;
        let len = if malicious { 1400 } else { 120 };
        let pkt = Packet {
            ts_ns: i * 1_000_000,
            five: FiveTuple::new(0x0A000001, 0xC0A80101, 30_000 + f, 80, PROTO_TCP),
            wire_len: len,
            ttl: 64,
            flags: TcpFlags::default(),
        };
        t.push(pkt, malicious);
    }
    t
}

fn flow_cfg(slots: usize) -> PipelineConfig {
    PipelineConfig::default().with_flow_table(
        FlowTableConfig::default().with_slots_per_table(slots).with_pkt_threshold(4),
    )
}

/// Everything a chaos run makes observable, for exact equality.
#[derive(Debug, PartialEq)]
struct ChaosFingerprint {
    confusion: (u64, u64, u64, u64),
    dropped: u64,
    digests: u64,
    blacklist: Vec<FiveTuple>,
    controller_installed: usize,
    chan: (u64, u64, u64, u64),
    action_failures: u64,
    retries: u64,
    shed: u64,
    dup_digests: u64,
    degraded: bool,
    flush_ticks: u64,
    resync_digests: u64,
}

impl ChaosFingerprint {
    fn of(r: &ReplayReport, dp: &ShardedPipeline, controller: &Controller) -> Self {
        Self {
            confusion: (r.tp, r.fp, r.tn, r.fn_),
            dropped: r.dropped,
            digests: r.digests,
            blacklist: dp.blacklist_contents(),
            controller_installed: controller.installed_len(),
            chan: (r.chan_dropped, r.chan_duplicated, r.chan_reordered, r.chan_delayed),
            action_failures: r.action_failures,
            retries: r.retries,
            shed: r.shed,
            dup_digests: r.dup_digests,
            degraded: r.degraded,
            flush_ticks: r.flush_ticks,
            resync_digests: r.resync_digests,
        }
    }
}

fn run_chaos(
    trace: &Trace,
    fl: RuleSet,
    shards: usize,
    workers: usize,
    batch: usize,
    chaos: &ChaosConfig,
) -> ChaosFingerprint {
    with_workers(workers, || {
        let cfg = ShardedPipelineConfig::from(flow_cfg(4096)).with_shards(shards);
        let mut dp = ShardedPipeline::new(cfg, fl.clone(), accept_all(4));
        let mut controller = Controller::new(ControllerConfig::default());
        let r = replay_chaos(
            trace,
            &mut dp,
            &mut controller,
            &ReplayConfig::default().with_batch_size(batch),
            chaos,
        );
        ChaosFingerprint::of(&r, &dp, &controller)
    })
}

/// Fault seeds exercised by the determinism grid. `scripts/check.sh` runs
/// this file under `IGUARD_WORKERS=1` and `=8` so both sides of the
/// worker-invariance claim are covered in CI.
const CHAOS_SEEDS: [u64; 2] = [11, 47];

#[test]
fn none_plan_chaos_equals_plain_replay_at_all_scales() {
    let trace = mixed_trace();
    let ideal = ChaosConfig::default();
    // Plain-replay reference on the serial grid point.
    let reference = with_workers(1, || {
        let cfg = ShardedPipelineConfig::from(flow_cfg(4096)).with_shards(1);
        let mut dp = ShardedPipeline::new(cfg, fl_ipd_jitter_above(0.0008), accept_all(4));
        let mut controller = Controller::new(ControllerConfig::default());
        let r =
            replay(&trace, &mut dp, &mut controller, &ReplayConfig::default().with_batch_size(256));
        ChaosFingerprint::of(&r, &dp, &controller)
    });
    assert_eq!(reference.chan, (0, 0, 0, 0), "ideal loop must not fault");
    assert_eq!(reference.flush_ticks, 0, "ideal loop must already be quiescent");
    assert!(!reference.degraded);
    for (shards, workers) in [(1, 1), (2, 1), (8, 1), (1, 8), (2, 2), (8, 8)] {
        let got = run_chaos(&trace, fl_ipd_jitter_above(0.0008), shards, workers, 256, &ideal);
        assert_eq!(got, reference, "none-plan chaos diverged at {shards}s/{workers}w");
    }
}

#[test]
fn faulty_replay_is_deterministic_across_shards_and_workers() {
    let trace = mixed_trace();
    for seed in CHAOS_SEEDS {
        let chaos =
            ChaosConfig::default().with_plan(FaultPlan::lossy(seed, 0.2)).with_resync_interval(16);
        let base = run_chaos(&trace, fl_ipd_jitter_above(0.0008), 1, 1, 256, &chaos);
        assert!(
            base.chan.0 > 0 && base.chan.1 > 0 && base.chan.3 > 0,
            "seed {seed} must exercise drop/duplicate/delay: {:?}",
            base.chan
        );
        assert!(base.retries > 0, "seed {seed} must exercise the retry path");
        for (shards, workers) in [(2, 1), (8, 1), (1, 8), (2, 8), (8, 8)] {
            let got = run_chaos(&trace, fl_ipd_jitter_above(0.0008), shards, workers, 256, &chaos);
            assert_eq!(got, base, "seed {seed} diverged at {shards} shards / {workers} workers");
        }
    }
}

/// Ticks in the stable trace at batch 64: 60 flows × 12 pkts / 64.
const STABLE_TICKS: u64 = 12;

#[test]
fn digest_outage_converges_exactly_after_heal_via_resync() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    let clean = run_chaos(&trace, fl.clone(), 4, 2, 64, &ChaosConfig::default());
    assert!(!clean.blacklist.is_empty(), "stable trace must blacklist its heavy flows");
    assert_eq!(clean.confusion.1, 0, "mean-size rule must not false-positive here");

    // Digest channel dark for the whole trace, healing 4 ticks after it
    // ends: every install and storage release rides the resync path.
    let chaos = ChaosConfig::default()
        .with_plan(FaultPlan::none().with_outage(ChannelKind::Digest, 0, STABLE_TICKS + 4))
        .with_resync_interval(4);
    let faulty = run_chaos(&trace, fl.clone(), 4, 2, 64, &chaos);
    assert_eq!(
        faulty.blacklist, clean.blacklist,
        "post-heal blacklist must equal the fault-free run"
    );
    assert_eq!(
        faulty.confusion, clean.confusion,
        "verdicts live in data-plane labels; an outage must not change them"
    );
    assert!(faulty.chan.0 > 0, "outage must have dropped digests");
    assert!(faulty.flush_ticks > 0, "recovery must extend past the trace");
    assert!(faulty.resync_digests > 0, "recovery must ride resync digests");

    // The healed run is itself worker/shard invariant.
    for (shards, workers) in [(1, 1), (8, 8)] {
        assert_eq!(
            run_chaos(&trace, fl.clone(), shards, workers, 64, &chaos),
            faulty,
            "outage recovery diverged at {shards} shards / {workers} workers"
        );
    }
}

#[test]
fn lossy_channel_converges_exactly_with_resync() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    let clean = run_chaos(&trace, fl.clone(), 4, 2, 64, &ChaosConfig::default());
    for seed in CHAOS_SEEDS {
        let chaos =
            ChaosConfig::default().with_plan(FaultPlan::lossy(seed, 0.25)).with_resync_interval(4);
        let faulty = run_chaos(&trace, fl.clone(), 4, 2, 64, &chaos);
        assert_eq!(
            faulty.blacklist, clean.blacklist,
            "seed {seed}: lossy channel must still converge to the exact blacklist"
        );
        // A send failure can release a flow's storage while its install is
        // still retrying; malicious packets in that gap are forwarded and
        // the flow re-learned — so a lossy *action* channel may trade a
        // bounded number of TPs for FNs. It must never inflate FPs.
        assert_eq!(faulty.confusion.1, clean.confusion.1, "seed {seed}: no FP inflation");
        assert_eq!(
            faulty.confusion.0 + faulty.confusion.3,
            clean.confusion.0 + clean.confusion.3,
            "seed {seed}: malicious packet population must be conserved"
        );
        let fn_inflation = faulty.confusion.3.saturating_sub(clean.confusion.3);
        assert!(fn_inflation <= 16, "seed {seed}: FN inflation {fn_inflation} exceeds bound");
        assert!(faulty.chan.0 > 0 && faulty.retries > 0, "seed {seed} must exercise faults");
    }
}

#[test]
fn controller_crash_rebuilds_from_data_plane_and_converges() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    let clean = run_chaos(&trace, fl.clone(), 4, 2, 64, &ChaosConfig::default());
    let chaos = ChaosConfig::default()
        .with_resync_interval(4)
        .with_crash(STABLE_TICKS / 2, CrashRecovery::RebuildFromDataPlane);
    let crashed = run_chaos(&trace, fl.clone(), 4, 2, 64, &chaos);
    assert_eq!(crashed.blacklist, clean.blacklist, "rebuild must recover the blacklist");
    assert_eq!(crashed.confusion, clean.confusion);
    assert_eq!(crashed.controller_installed, clean.controller_installed);
}

#[test]
fn controller_crash_restores_checkpoint_byte_identically() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    // Checkpoint every tick: restoring at the start of tick T yields the
    // exact end-of-tick-T-1 state, so the whole run — counters included —
    // is indistinguishable from one that never crashed.
    let base = run_chaos(
        &trace,
        fl.clone(),
        4,
        2,
        64,
        &ChaosConfig::default().with_checkpoint_interval(1),
    );
    let crashed = run_chaos(
        &trace,
        fl.clone(),
        4,
        2,
        64,
        &ChaosConfig::default()
            .with_checkpoint_interval(1)
            .with_crash(STABLE_TICKS / 2, CrashRecovery::RestoreCheckpoint),
    );
    assert_eq!(crashed, base, "per-tick checkpoints must make crashes invisible");
}

#[test]
fn tcam_saturation_degrades_gracefully() {
    let trace = stable_trace(60, 12);
    let fl = fl_mean_size_below(800.0);
    // 20 malicious flows but room for 4 rules: installs 5..20 fail with
    // TcamFull, exhaust their retry budget, and flip the degraded flag —
    // but the run completes and the 4 installed rules keep matching.
    let chaos = ChaosConfig::default().with_tcam_capacity(4);
    let mut dp = ShardedPipeline::new(
        ShardedPipelineConfig::from(flow_cfg(4096)).with_shards(4),
        fl,
        accept_all(4),
    );
    let mut controller = Controller::new(ControllerConfig::default());
    let r = replay_chaos(
        &trace,
        &mut dp,
        &mut controller,
        &ReplayConfig::default().with_batch_size(64),
        &chaos,
    );
    assert_eq!(dp.blacklist_len(), 4, "TCAM budget must cap the installed rules");
    assert!(r.degraded, "saturation must raise the degraded flag");
    assert!(r.retries > 0 && r.retries_exhausted > 0, "installs must retry then exhaust");
    assert!(r.action_failures > 0);
    assert_eq!(r.chan_dropped, 0, "digest channel was clean in this scenario");
    assert!(r.tp > 0 && r.tn > 0, "the pipeline keeps classifying throughout");
}
