//! Phase-parity suite (DESIGN.md §16): phase-aware classification is
//! part of the deterministic surface. For every phase configuration —
//! disabled, one boundary, two boundaries — the full observable stream
//! (outcomes, sequence-tagged digests, overload stats) must be
//! byte-identical at every shard × worker grid point, a phase schedule
//! with no installed rulesets must be indistinguishable from single-shot
//! operation, and every backend (scalar, columnar, sharded, sketched)
//! must agree packet-for-packet when phases are live.

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_flow::table::{FlowTableConfig, PhaseSchedule};
use iguard_runtime::par::with_workers;
use iguard_runtime::rng::Rng;
use iguard_switch::data_plane::OverloadStats;
use iguard_switch::pipeline::{
    Pipeline, PipelineConfig, ProcessOutcome, ScalarPipeline, SeqDigest, FINAL_PHASE,
};
use iguard_switch::sharded::{ShardedPipeline, ShardedPipelineConfig};
use iguard_switch::sketched::{SketchedPipeline, SketchedPipelineConfig};
use iguard_switch::DataPlane;
use iguard_synth::benign::benign_trace;
use iguard_synth::scenarios::Scenario;
use iguard_synth::trace::Trace;

fn accept_all(dim: usize) -> RuleSet {
    RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

/// Phase whitelist accepting flows whose mean packet size stays below
/// `cut` — large-packet flows convict at the boundary, the rest
/// escalate toward the final threshold.
fn fl_mean_size_below(cut: f32) -> RuleSet {
    let mut lo = vec![f32::NEG_INFINITY; 13];
    let mut hi = vec![f32::INFINITY; 13];
    lo[2] = f32::NEG_INFINITY;
    hi[2] = cut;
    RuleSet {
        bounds: vec![(0.0, 2000.0); 13],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

/// Mixed storm: benign background plus the adversarial canon, small
/// enough to grid over but with enough collision churn and flow rebirth
/// to exercise every phase transition.
fn phase_storm() -> Trace {
    let mut rng = Rng::seed_from_u64(0x9A5E);
    Trace::merge(vec![
        benign_trace(40, 6.0, &mut rng),
        Scenario::StateExhaustion.trace(1_500, 6.0, &mut rng),
        Scenario::PulseWave.trace(400, 6.0, &mut rng),
        Scenario::Slowloris.trace(100, 6.0, &mut rng),
        Scenario::C2Beacon.trace(60, 6.0, &mut rng),
    ])
}

/// Cross-backend comparisons need a collision-free flow population:
/// the serial and sharded table layouts hash flows to slots differently,
/// so with thousands of flows the two layouts resolve *different* hash
/// collisions and legitimately diverge (cf. `shard_invariance.rs`,
/// "without slot pressure"). A couple hundred flows in a 65k-slot table
/// keeps both layouts collision-free — deterministically, since the
/// trace seed is fixed.
fn parity_mix() -> Trace {
    let mut rng = Rng::seed_from_u64(0x9A5E);
    Trace::merge(vec![
        benign_trace(40, 6.0, &mut rng),
        Scenario::PulseWave.trace(100, 6.0, &mut rng),
        Scenario::Slowloris.trace(50, 6.0, &mut rng),
        Scenario::C2Beacon.trace(40, 6.0, &mut rng),
    ])
}

/// The three phase configurations under test: disabled, a single early
/// boundary, and the bench ladder. Rulesets are one per boundary.
fn phase_rules(boundaries: &[u64]) -> Vec<RuleSet> {
    boundaries.iter().map(|_| fl_mean_size_below(150.0)).collect()
}

fn phase_cfg(boundaries: &[u64], slots: usize) -> PipelineConfig {
    let mut ft = FlowTableConfig::default().with_slots_per_table(slots).with_pkt_threshold(4);
    if !boundaries.is_empty() {
        ft = ft.with_phases(PhaseSchedule::new(boundaries));
    }
    PipelineConfig::default().with_flow_table(ft)
}

/// Small enough to put the grid under real slot pressure.
const PRESSURED_SLOTS: usize = 512;
/// Large enough that no flow collides in any backend's layout: serial,
/// sharded and sketched backends only promise packet-for-packet parity
/// when slot pressure is absent (cf. `shard_invariance.rs`).
const PRESSURE_FREE_SLOTS: usize = 65_536;

/// Everything a backend makes observable, for exact equality.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    outcomes: Vec<ProcessOutcome>,
    digests: Vec<SeqDigest>,
    overload: OverloadStats,
}

/// Element-wise outcome + digest comparison that reports the *first*
/// mismatch instead of dumping two multi-thousand-element vectors.
fn assert_streams_eq(a: &Fingerprint, b: &Fingerprint, what: &str) {
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{what}: outcome count");
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x, y, "{what}: outcomes diverge at packet {i}");
    }
    assert_eq!(a.digests.len(), b.digests.len(), "{what}: digest count");
    for (i, (x, y)) in a.digests.iter().zip(&b.digests).enumerate() {
        assert_eq!(x, y, "{what}: digests diverge at index {i}");
    }
}

fn fingerprint<D: DataPlane>(mut dp: D, trace: &Trace) -> Fingerprint {
    let mut outcomes = Vec::new();
    let mut digests = Vec::new();
    let mut out = Vec::new();
    for chunk in trace.packets.chunks(512) {
        dp.process_batch(chunk, &mut out);
        outcomes.extend_from_slice(&out);
        dp.drain_seq_digests_into(&mut digests);
    }
    Fingerprint { outcomes, digests, overload: dp.overload_stats() }
}

fn run_sharded(
    trace: &Trace,
    boundaries: &[u64],
    rules: &[RuleSet],
    slots: usize,
    shards: usize,
    workers: usize,
) -> Fingerprint {
    with_workers(workers, || {
        let cfg = ShardedPipelineConfig::from(phase_cfg(boundaries, slots)).with_shards(shards);
        let mut dp = ShardedPipeline::new(cfg, accept_all(13), accept_all(4));
        if !rules.is_empty() {
            dp.set_phase_rulesets(rules);
        }
        fingerprint(dp, trace)
    })
}

/// Phase-enabled classification must be byte-identical at every
/// shard × worker grid point, for every phase configuration.
#[test]
fn phase_fingerprint_invariant_across_grid() {
    let trace = phase_storm();
    let configs: [&[u64]; 3] = [&[], &[2], &[2, 3]];
    for boundaries in configs {
        let rules = phase_rules(boundaries);
        let base = run_sharded(&trace, boundaries, &rules, PRESSURED_SLOTS, 1, 1);
        if boundaries.is_empty() {
            assert!(
                base.digests.iter().all(|d| d.digest.phase == FINAL_PHASE),
                "single-shot run must not stamp intermediate phases"
            );
        } else {
            assert!(
                base.digests.iter().any(|d| d.digest.malicious && d.digest.phase == 0),
                "phase run must convict at the first boundary (non-vacuous)"
            );
        }
        for (shards, workers) in [(2, 1), (8, 1), (1, 2), (1, 8), (2, 8), (8, 8)] {
            let got = run_sharded(&trace, boundaries, &rules, PRESSURED_SLOTS, shards, workers);
            assert_eq!(
                got, base,
                "phase fingerprint diverged at boundaries {boundaries:?}, \
                 {shards} shards / {workers} workers"
            );
        }
    }
}

/// A phase schedule with no installed rulesets escalates unconditionally
/// at every boundary: its observable stream is bit-for-bit the
/// single-shot stream, and both match the plain unsharded [`Pipeline`].
#[test]
fn phases_disabled_matches_plain_pipeline() {
    let trace = parity_mix();
    let plain = fingerprint(
        Pipeline::new(phase_cfg(&[], PRESSURE_FREE_SLOTS), accept_all(13), accept_all(4)),
        &trace,
    );
    let no_schedule = run_sharded(&trace, &[], &[], PRESSURE_FREE_SLOTS, 1, 1);
    let schedule_no_rules = run_sharded(&trace, &[2, 3], &[], PRESSURE_FREE_SLOTS, 1, 1);
    assert_streams_eq(&plain, &no_schedule, "plain pipeline vs sharded single-shot");
    assert_eq!(
        no_schedule, schedule_no_rules,
        "a phase schedule without rulesets must be indistinguishable from single-shot"
    );
    // The same equivalence must hold under slot pressure, where the
    // boundary checks fire against a churning table. Sharded-vs-sharded
    // shares one layout, so the full storm is fair game here.
    let storm = phase_storm();
    let pressured_plain = run_sharded(&storm, &[], &[], PRESSURED_SLOTS, 1, 1);
    let pressured_schedule = run_sharded(&storm, &[2, 3], &[], PRESSURED_SLOTS, 1, 1);
    assert_eq!(
        pressured_plain, pressured_schedule,
        "ruleset-free phase schedule diverged from single-shot under slot pressure"
    );
}

/// With phases live, every backend agrees packet-for-packet: scalar
/// reference, columnar batch path, sharded grid, and the sketch-fronted
/// pipeline in exact mode all produce the same outcomes and digests.
#[test]
fn phase_parity_across_backends() {
    let trace = parity_mix();
    let boundaries: &[u64] = &[2, 3];
    let rules = phase_rules(boundaries);

    let cfg = phase_cfg(boundaries, PRESSURE_FREE_SLOTS);

    let mut scalar = ScalarPipeline::new(cfg.clone(), accept_all(13), accept_all(4));
    scalar.set_phase_rulesets(&rules);
    let scalar_fp = fingerprint(scalar, &trace);
    assert!(
        scalar_fp.digests.iter().any(|d| d.digest.malicious && d.digest.phase == 0),
        "backend parity run must include phase convictions"
    );

    let mut columnar = Pipeline::new(cfg.clone(), accept_all(13), accept_all(4));
    columnar.set_phase_rulesets(&rules);
    let columnar_fp = fingerprint(columnar, &trace);
    assert_streams_eq(&scalar_fp, &columnar_fp, "scalar vs columnar");

    let sharded_fp = run_sharded(&trace, boundaries, &rules, PRESSURE_FREE_SLOTS, 8, 8);
    assert_streams_eq(&scalar_fp, &sharded_fp, "scalar vs sharded");

    let sk_cfg = SketchedPipelineConfig { pipeline: cfg, ..Default::default() };
    let mut sketched = SketchedPipeline::new(sk_cfg, accept_all(13), accept_all(4));
    sketched.set_phase_rulesets(&rules);
    let sketched_fp = fingerprint(sketched, &trace);
    assert_streams_eq(&scalar_fp, &sketched_fp, "scalar vs sketched (exact mode)");
}
