//! Overload-resilience suite: adversarial state-exhaustion pressure must
//! degrade the data plane *predictably* — same fingerprints at every
//! shard × worker grid point, observable degraded-mode entry/exit with
//! full recovery, and clean flow rebirth across the idle-timeout
//! boundary (pulse-wave shape): digest sequence tags stay unique and no
//! stale statistics leak into a reborn flow's features (DESIGN.md §15).

use std::collections::HashMap;

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP, PROTO_UDP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::table::PhaseSchedule;
use iguard_flow::table::{FlowShard, FlowTableConfig, InsertOutcome};
use iguard_runtime::par::with_workers;
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;
use iguard_switch::data_plane::OverloadStats;
use iguard_switch::pipeline::{
    ControlAction, PathTaken, Pipeline, PipelineConfig, ProcessOutcome, SeqDigest, FINAL_PHASE,
};
use iguard_switch::sharded::{ShardedPipeline, ShardedPipelineConfig, LOGICAL_SHARDS};
use iguard_switch::DataPlane;
use iguard_synth::benign::benign_trace;
use iguard_synth::scenarios::Scenario;
use iguard_synth::trace::Trace;

fn accept_all(dim: usize) -> RuleSet {
    RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

/// Phase whitelist whose benign envelope is "mean packet size below
/// `cut`": flows of large packets fall outside it and convict at the
/// boundary, flows of small packets escalate.
fn fl_mean_size_below(cut: f32) -> RuleSet {
    let mut lo = vec![f32::NEG_INFINITY; 13];
    let mut hi = vec![f32::INFINITY; 13];
    lo[2] = f32::NEG_INFINITY;
    hi[2] = cut;
    RuleSet {
        bounds: vec![(0.0, 2000.0); 13],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

fn pkt(flow: u32, ts_ns: u64, len: u16) -> Packet {
    Packet {
        ts_ns,
        five: FiveTuple::new(
            0x0A00_0000 | (flow >> 6),
            0xC0A8_0101,
            30_000 + (flow & 63) as u16,
            80,
            if flow & 1 == 0 { PROTO_TCP } else { PROTO_UDP },
        ),
        wire_len: len,
        ttl: 64,
        flags: TcpFlags::default(),
    }
}

// ---------------------------------------------------------------------
// Idle-timeout boundary: the raw flow-table rebirth contract.
// ---------------------------------------------------------------------

proptest_lite! {
    /// A flow that goes idle and returns re-enters cleanly at the
    /// timeout boundary. Strictly *after* the timeout the returning
    /// packet yields the accumulated pre-gap stats exactly once (tagged
    /// `timed_out`) and tracking restarts from that packet: the reborn
    /// flow's features contain only post-gap state — first timestamp at
    /// rebirth, packet count from 1, and the idle gap itself never
    /// appears as an inter-packet delay. At or below the timeout the
    /// same gap is ordinary jitter and accumulation continues.
    fn idle_timeout_rebirth_has_no_stale_stats(rng) {
        let timeout_ns = rng.gen_range(200_000_000u64..2_000_000_000);
        let threshold = rng.gen_range(3u64..6);
        let cfg = FlowTableConfig::default()
            .with_timeout_ns(timeout_ns)
            .with_pkt_threshold(threshold)
            .with_slots_per_table(64);
        let ipd = rng.gen_range(1_000_000u64..10_000_000);
        // Pre-gap burst stops short of the threshold so the flow is
        // resident-but-unlabeled when it goes idle (the pulse shape).
        let pre = rng.gen_range(1u64..threshold);
        let expired = rng.gen_bool(0.5);
        // `timed_out` is strictly greater-than: a gap of exactly the
        // timeout is still the same flow incarnation.
        let gap = if expired {
            timeout_ns + rng.gen_range(1u64..50_000_000)
        } else {
            timeout_ns - rng.gen_range(0u64..timeout_ns.min(50_000_000))
        };
        assert!(gap > ipd, "gap must dominate the burst ipd");

        let mut shard = FlowShard::new(cfg);
        let mut ts = 1_000_000u64;
        for i in 0..pre {
            let out = shard.observe(&pkt(7, ts, 400), ts);
            assert!(
                matches!(out, InsertOutcome::Early { pkt_count } if pkt_count == i + 1),
                "pre-gap burst stays early, got {out:?}"
            );
            ts += ipd;
        }
        let last_pre_ts = ts - ipd;

        // The returning packet.
        let rebirth_ts = last_pre_ts + gap;
        let out = shard.observe(&pkt(7, rebirth_ts, 400), rebirth_ts);
        if expired {
            // Stale state is flushed exactly once, tagged as a timeout.
            match out {
                InsertOutcome::Ready { stats, timed_out: true } => {
                    assert_eq!(stats.pkt_count, pre, "flushed stats are the pre-gap burst");
                    assert_eq!(stats.last_ts_ns, last_pre_ts);
                }
                other => panic!("expired re-entry must flush stale stats, got {other:?}"),
            }
        } else {
            let expect = pre + 1;
            if expect >= threshold {
                assert!(matches!(out, InsertOutcome::Ready { stats, timed_out: false }
                    if stats.pkt_count == expect));
            } else {
                assert!(matches!(out, InsertOutcome::Early { pkt_count } if pkt_count == expect));
            }
            return; // continuation case: nothing was reborn
        }

        // Drive the reborn incarnation to its threshold and inspect the
        // features the blue path would classify on.
        let mut ts = rebirth_ts;
        for i in 1..threshold {
            ts += ipd;
            let out = shard.observe(&pkt(7, ts, 400), ts);
            if i + 1 < threshold {
                assert!(matches!(out, InsertOutcome::Early { pkt_count } if pkt_count == i + 1));
            } else {
                match out {
                    InsertOutcome::Ready { stats, timed_out: false } => {
                        assert_eq!(stats.pkt_count, threshold, "count restarts at rebirth");
                        assert_eq!(stats.first_ts_ns, rebirth_ts, "history starts at rebirth");
                        assert!(
                            stats.max_ipd_ns < gap,
                            "idle gap leaked into reborn ipd: {} >= {gap}",
                            stats.max_ipd_ns
                        );
                    }
                    other => panic!("reborn flow must reach Ready cleanly, got {other:?}"),
                }
            }
        }
    }

    /// Pulse-wave traffic through the full pipeline + a minimal control
    /// loop (benign classifications release storage, as the controller
    /// does): every flow re-enters across the inter-pulse idle gap, each
    /// incarnation emits its own digest, and the sequence tags over the
    /// whole run are globally unique — rebirth never reuses or skips
    /// evidence identity.
    fn pulse_reentry_digest_seqs_stay_unique(rng) {
        let trace = Scenario::PulseWave.trace(rng.gen_range(8usize..24), 8.0, rng);
        assert!(!trace.packets.is_empty());
        let cfg = PipelineConfig::default().with_flow_table(
            FlowTableConfig::default().with_slots_per_table(4096).with_pkt_threshold(4),
        );
        // accept-all whitelists: every digest is benign, so the clear-on-
        // benign loop exercises the rebirth path for every flow.
        let mut p = Pipeline::new(cfg, accept_all(13), accept_all(4));
        let mut out: Vec<ProcessOutcome> = Vec::new();
        let mut digests: Vec<SeqDigest> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut per_flow: HashMap<FiveTuple, u64> = HashMap::new();
        // Small batches: storage releases land between pulses, as the
        // real control loop's per-tick feedback would deliver them.
        for chunk in trace.packets.chunks(16) {
            p.process_batch(chunk, &mut out);
            digests.clear();
            p.drain_seq_digests_into(&mut digests);
            for d in &digests {
                assert!(seen.insert(d.seq), "duplicate digest seq {}", d.seq);
                assert!(!d.digest.malicious);
                *per_flow.entry(d.digest.five).or_default() += 1;
                p.apply(ControlAction::ClearFlow(d.digest.five));
            }
        }
        // The 3 s inter-pulse gap exceeds the 2 s idle timeout, so every
        // pulse flow is reborn at least once and re-classified each time.
        assert!(
            per_flow.values().any(|&n| n >= 2),
            "no flow re-entered across the idle gap: {per_flow:?}"
        );
    }

    /// A flow reborn after the idle timeout restarts the phase ladder
    /// at phase 0 (end-to-end, through the full pipeline). The first
    /// incarnation walks past the phase boundary (escalating), goes
    /// idle past the timeout, and its stale stats are flushed as a
    /// benign timeout verdict that the control loop answers with
    /// `ClearFlow`. The reborn incarnation then sends packets that the
    /// phase whitelist rejects: if phase progress had leaked across the
    /// rebirth the boundary would never re-fire and the flow would run
    /// to the final threshold — instead it must be convicted at its own
    /// second packet with a digest stamped `phase == 0`.
    fn reborn_flow_reenters_phase_ladder_at_phase_zero(rng) {
        let timeout_ns = rng.gen_range(200_000_000u64..2_000_000_000);
        let cfg = PipelineConfig::default().with_flow_table(
            FlowTableConfig::default()
                .with_timeout_ns(timeout_ns)
                .with_pkt_threshold(4)
                .with_slots_per_table(64)
                .with_phases(PhaseSchedule::new(&[2])),
        );
        let mut p = Pipeline::new(cfg, accept_all(13), accept_all(4));
        p.set_phase_rulesets(&[fl_mean_size_below(200.0)]);
        let ipd = rng.gen_range(1_000_000u64..10_000_000);
        let mut ts = 1_000_000u64;

        // First incarnation: two small packets. The second crosses the
        // phase boundary, the whitelist accepts (mean 100 < 200), and
        // the flow escalates — phase progress now points past boundary 0.
        assert_eq!(p.process(&pkt(7, ts, 100)).path, PathTaken::Brown);
        ts += ipd;
        assert_eq!(p.process(&pkt(7, ts, 100)).path, PathTaken::Brown);
        assert!(p.drain_digests().is_empty(), "escalation emits no digest");

        // Idle strictly past the timeout. The returning packet flushes
        // the stale stats as a single-shot timeout verdict (benign under
        // accept-all FL) and the controller releases the slot.
        ts += timeout_ns + rng.gen_range(1u64..50_000_000);
        assert_eq!(p.process(&pkt(7, ts, 1000)).path, PathTaken::Blue);
        let flushed = p.drain_digests();
        assert_eq!(flushed.len(), 1);
        assert!(!flushed[0].malicious, "stale small-packet stats judge benign");
        assert_eq!(flushed[0].phase, FINAL_PHASE, "timeout flush is a single-shot verdict");
        p.apply(ControlAction::ClearFlow(flushed[0].five));

        // Reborn incarnation, large packets: the boundary must re-fire
        // at the *reborn* flow's second packet and convict on post-gap
        // stats only (mean 1000 > 200).
        ts += ipd;
        assert_eq!(p.process(&pkt(7, ts, 1000)).path, PathTaken::Brown);
        ts += ipd;
        let out = p.process(&pkt(7, ts, 1000));
        assert_eq!(out.path, PathTaken::Blue, "reborn flow must re-enter the phase ladder");
        assert!(out.mirrored, "phase conviction mirrors the deciding packet");
        let convicted = p.drain_digests();
        assert_eq!(convicted.len(), 1);
        assert!(convicted[0].malicious);
        assert_eq!(convicted[0].phase, 0, "reborn flow restarts at phase 0");
    }
}

// ---------------------------------------------------------------------
// Overload behaviour at scale: grid invariance + hysteresis recovery.
// ---------------------------------------------------------------------

/// The adversarial canon at test scale, over a benign background.
fn canon_storm() -> Trace {
    let mut rng = Rng::seed_from_u64(0x0E11);
    let mut segs = vec![benign_trace(40, 6.0, &mut rng)];
    segs.push(Scenario::StateExhaustion.trace(3_000, 6.0, &mut rng));
    segs.push(Scenario::PulseWave.trace(600, 6.0, &mut rng));
    segs.push(Scenario::Slowloris.trace(120, 6.0, &mut rng));
    segs.push(Scenario::C2Beacon.trace(80, 6.0, &mut rng));
    Trace::merge(segs)
}

/// Everything the overload layer makes observable, for exact equality.
#[derive(Debug, PartialEq)]
struct OverloadFingerprint {
    outcomes: Vec<ProcessOutcome>,
    digests: Vec<SeqDigest>,
    overload: OverloadStats,
}

fn run_grid_point(trace: &Trace, shards: usize, workers: usize) -> OverloadFingerprint {
    with_workers(workers, || {
        // Deliberately small slots so the storm drives real pressure:
        // 512 slots/table divide across the 16 logical shards into a
        // 64-flow capacity per shard.
        let pcfg = PipelineConfig::default().with_flow_table(
            FlowTableConfig::default().with_slots_per_table(512).with_pkt_threshold(4),
        );
        let cfg = ShardedPipelineConfig::from(pcfg).with_shards(shards);
        let mut dp = ShardedPipeline::new(cfg, accept_all(13), accept_all(4));
        let mut outcomes = Vec::new();
        let mut digests = Vec::new();
        let mut out = Vec::new();
        for chunk in trace.packets.chunks(1024) {
            dp.process_batch(chunk, &mut out);
            outcomes.extend_from_slice(&out);
            dp.drain_seq_digests_into(&mut digests);
        }
        OverloadFingerprint { outcomes, digests, overload: dp.overload_stats() }
    })
}

/// Pressure, degraded-mode bookkeeping, shed counts and the digest
/// stream must be byte-identical at every shard × worker combination —
/// overload behaviour is part of the deterministic surface, not a
/// best-effort side channel.
#[test]
fn overload_fingerprint_invariant_across_grid() {
    let trace = canon_storm();
    let base = run_grid_point(&trace, 1, 1);
    assert!(base.overload.degraded_entries > 0, "storm must trip degraded mode");
    assert!(base.overload.shed_benign > 0, "degraded shards must shed benign digests");
    for (shards, workers) in [(2, 1), (8, 1), (1, 8), (2, 8), (8, 8)] {
        let got = run_grid_point(&trace, shards, workers);
        assert_eq!(
            got, base,
            "overload fingerprint diverged at {shards} shards / {workers} workers"
        );
    }
}

/// Degraded mode is a *cycle*, not a ratchet: a state-exhaustion storm
/// trips shards in, a calm resident-only tail walks every one of them
/// back out, and the per-shard views sum exactly to the merged stats.
#[test]
fn degraded_shards_recover_after_storm() {
    // 128 slots/table → 8/table per logical shard → 16-flow capacity.
    let pcfg = PipelineConfig::default().with_flow_table(
        FlowTableConfig::default().with_slots_per_table(128).with_pkt_threshold(100),
    );
    let mut dp =
        ShardedPipeline::new(ShardedPipelineConfig::from(pcfg), accept_all(13), accept_all(4));
    let mut out = Vec::new();

    // Pre-install a small calm working set while the table is empty.
    let calm_flows = 64u32;
    let calm_batch = |base_ns: u64| -> Vec<Packet> {
        (0..80u64)
            .flat_map(|rep| {
                (0..calm_flows)
                    .map(move |f| pkt(f, base_ns + rep * 2_000_000 + f as u64 * 1_000, 200))
            })
            .collect()
    };
    dp.process_batch(&calm_batch(0), &mut out);
    let installed = dp.overload_stats();
    assert_eq!(installed.degraded_shards, 0, "calm working set must not trip pressure");

    // State-exhaustion storm: thousands of one-packet flows against the
    // live residents — near-total collision churn in every shard.
    let storm: Vec<Packet> =
        (0..12_000u32).map(|f| pkt(1_000 + f, 200_000_000 + f as u64 * 20_000, 60)).collect();
    for chunk in storm.chunks(1024) {
        dp.process_batch(chunk, &mut out);
    }
    let stormy = dp.overload_stats();
    assert!(stormy.degraded_entries > 0, "storm must enter degraded mode");
    assert!(stormy.degraded_shards > 0, "storm pressure persists while churn lasts");
    assert!(stormy.pressure.churn_milli_hwm >= 750, "churn {}", stormy.pressure.churn_milli_hwm);

    // Calm tail: resident-only traffic rolls the pressure windows clean
    // and the hysteresis exit walks every shard back to normal.
    for b in 1..=8u64 {
        dp.process_batch(&calm_batch(500_000_000 + b * 170_000_000), &mut out);
    }
    let after = dp.overload_stats();
    assert_eq!(after.degraded_shards, 0, "every shard must exit degraded mode");
    assert_eq!(after.degraded_exits, after.degraded_entries, "exits must match entries");
    assert!(after.degraded_batches >= after.degraded_entries);

    // The merged view is exactly the sum of the per-shard views.
    let views = dp.shard_overload_views();
    assert_eq!(views.len(), LOGICAL_SHARDS);
    let summed = views.iter().fold(OverloadStats::default(), |acc, v| acc.merge(v));
    assert_eq!(summed, after);
    assert!(views.iter().all(|v| v.degraded_shards == 0));
}
