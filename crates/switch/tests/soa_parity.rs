//! Structure-of-arrays ↔ scalar parity.
//!
//! The columnar batch path ([`Pipeline::process_batch`] /
//! [`DataPlane::classify_batch`]) must be byte-identical to per-packet
//! processing ([`ScalarPipeline`]) — same verdicts, same seq-tagged digest
//! stream, same path and whitelist counters — on every backend, at any
//! worker count, and at any physical shard grouping. These seeded
//! randomized suites throw NaN/∞ features, edge wire lengths and TTLs,
//! timeout-crossing timestamp jumps, mid-stream blacklist installs, and
//! chunk-boundary-straddling batch sizes at that claim.

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_flow::features::SWITCH_FL_DIM;
use iguard_flow::five_tuple::{FiveTuple, PROTO_TCP, PROTO_UDP};
use iguard_flow::packet::{Packet, TcpFlags};
use iguard_flow::table::FlowTableConfig;
use iguard_runtime::par::with_workers;
use iguard_runtime::proptest_lite;
use iguard_runtime::rng::Rng;
use iguard_runtime::Dataset;
use iguard_switch::pipeline::{
    ControlAction, PacketVerdict, PathCounters, Pipeline, PipelineConfig, ProcessOutcome,
    ScalarPipeline, SeqDigest, WhitelistCounters,
};
use iguard_switch::sharded::ShardedPipelineConfig;
use iguard_switch::{DataPlane, ShardedPipeline};

/// A random whitelist: a handful of hypercubes with open/closed faces
/// (sometimes empty — then nothing matches and everything is malicious).
fn random_rules(rng: &mut Rng, dim: usize) -> RuleSet {
    let n = rng.gen_range(0usize..4);
    let whitelist = (0..n)
        .map(|_| {
            let mut lo = vec![f32::NEG_INFINITY; dim];
            let mut hi = vec![f32::INFINITY; dim];
            for d in 0..dim {
                if rng.gen_bool(0.5) {
                    lo[d] = rng.gen_range(-10.0f32..1000.0);
                }
                if rng.gen_bool(0.5) {
                    hi[d] = lo[d].max(0.0) + rng.gen_range(0.0f32..1500.0);
                }
            }
            Hypercube { lo, hi }
        })
        .collect();
    RuleSet { bounds: vec![(0.0, 2000.0); dim], whitelist, total_regions: n.max(1) }
}

fn random_pool(rng: &mut Rng, flows: usize) -> Vec<FiveTuple> {
    (0..flows)
        .map(|_| {
            FiveTuple::new(
                0x0A00_0000 | rng.gen_range(0u32..64),
                0xC0A8_0000 | rng.gen_range(0u32..64),
                rng.gen_range(1024u16..1024 + 32),
                [80u16, 443, 53][rng.gen_range(0..3usize)],
                if rng.gen_bool(0.7) { PROTO_TCP } else { PROTO_UDP },
            )
        })
        .collect()
}

/// Random packets over a small flow pool: edge wire lengths/TTLs and
/// occasional timeout-crossing timestamp jumps.
fn random_packets(rng: &mut Rng, pool: &[FiveTuple], n: usize) -> Vec<Packet> {
    let mut ts = 0u64;
    (0..n)
        .map(|_| {
            ts += if rng.gen_bool(0.02) {
                10_000_000_000 // 10 s: crosses any sane flow timeout
            } else {
                rng.gen_range(0u64..3_000_000)
            };
            let mut five = pool[rng.gen_range(0..pool.len())];
            if rng.gen_bool(0.3) {
                five = five.reversed();
            }
            Packet {
                ts_ns: ts,
                five,
                wire_len: [0u16, 1, 64, 120, 1400, u16::MAX][rng.gen_range(0..6usize)],
                ttl: [0u8, 1, 64, 255][rng.gen_range(0..4usize)],
                flags: TcpFlags::default(),
            }
        })
        .collect()
}

type Observed =
    (Vec<ProcessOutcome>, Vec<SeqDigest>, WhitelistCounters, PathCounters, Vec<FiveTuple>, u64);

/// Feed `batches` through `dp` with a blacklist install/remove pair
/// between the first and second halves, then collect everything
/// observable.
fn drive(dp: &mut dyn DataPlane, batches: &[Vec<Packet>], victims: &[FiveTuple]) -> Observed {
    let mut out = Vec::new();
    let mut digests = Vec::new();
    let mut buf = Vec::new();
    for (b, batch) in batches.iter().enumerate() {
        if b == batches.len() / 2 {
            for &v in victims {
                dp.apply(ControlAction::InstallBlacklist(v));
            }
            if let Some(&v) = victims.first() {
                dp.apply(ControlAction::RemoveBlacklist(v));
            }
        }
        dp.process_batch(batch, &mut buf);
        out.extend_from_slice(&buf);
        dp.drain_seq_digests_into(&mut digests);
    }
    (
        out,
        digests,
        dp.whitelist_counters(),
        dp.counters(),
        dp.blacklist_contents(),
        dp.packets_processed(),
    )
}

fn random_cfg(rng: &mut Rng) -> PipelineConfig {
    PipelineConfig::default()
        .with_flow_table(FlowTableConfig::default().with_pkt_threshold(rng.gen_range(2u64..6)))
        .with_drop_malicious(rng.gen_bool(0.8))
        .with_log_compress(rng.gen_bool(0.5))
}

proptest_lite! {
    /// Columnar `Pipeline`, `ScalarPipeline`, and `ShardedPipeline` at
    /// every (shards, workers) grouping agree packet-for-packet: verdicts,
    /// seq-tagged digests, whitelist counters, path counters, blacklist,
    /// processed count.
    fn process_batch_matches_scalar_everywhere(rng) {
        let cfg = random_cfg(rng);
        let fl = random_rules(rng, SWITCH_FL_DIM);
        let pl = random_rules(rng, 4);
        let flows = rng.gen_range(4usize..24);
        let pool = random_pool(rng, flows);
        let batches: Vec<Vec<Packet>> = (0..rng.gen_range(2usize..6))
            .map(|_| {
                let n = rng.gen_range(1usize..200);
                random_packets(rng, &pool, n)
            })
            .collect();
        let victims: Vec<FiveTuple> =
            (0..3).map(|_| pool[rng.gen_range(0..pool.len())]).collect();

        let mut scalar = ScalarPipeline::new(cfg, fl.clone(), pl.clone());
        let want = drive(&mut scalar, &batches, &victims);

        let mut soa = Pipeline::new(cfg, fl.clone(), pl.clone());
        assert_eq!(drive(&mut soa, &batches, &victims), want, "SoA Pipeline != scalar");

        // Default flow-table slots and ≤ 24 flows: no slot pressure, so the
        // sharded backend agrees with the serial one packet-for-packet.
        for (shards, workers) in [(1usize, 1usize), (1, 8), (8, 1), (8, 8)] {
            let got = with_workers(workers, || {
                let scfg = ShardedPipelineConfig::default()
                    .with_pipeline(cfg)
                    .with_shards(shards);
                let mut dp = ShardedPipeline::new(scfg, fl.clone(), pl.clone());
                drive(&mut dp, &batches, &victims)
            });
            assert_eq!(got, want, "sharded({shards})/workers({workers}) != scalar");
        }
    }

    /// Same parity with batches straddling the 1024-row chunk boundary
    /// (fewer cases — each one pushes thousands of packets).
    fn process_batch_parity_across_chunk_boundaries(rng, cases = 6) {
        let cfg = random_cfg(rng);
        let fl = random_rules(rng, SWITCH_FL_DIM);
        let pl = random_rules(rng, 4);
        let pool = random_pool(rng, 16);
        let n = 1024 * rng.gen_range(1usize..3) + rng.gen_range(0usize..3) + 1022;
        let batches = vec![random_packets(rng, &pool, n)];

        let mut scalar = ScalarPipeline::new(cfg, fl.clone(), pl.clone());
        let want = drive(&mut scalar, &batches, &[]);
        let mut soa = Pipeline::new(cfg, fl.clone(), pl.clone());
        assert_eq!(drive(&mut soa, &batches, &[]), want, "SoA Pipeline != scalar at n={n}");
        let got = with_workers(8, || {
            let scfg =
                ShardedPipelineConfig::default().with_pipeline(cfg).with_shards(8);
            let mut dp = ShardedPipeline::new(scfg, fl.clone(), pl.clone());
            drive(&mut dp, &batches, &[])
        });
        assert_eq!(got, want, "sharded != scalar at n={n}");
    }

    /// `classify_batch` (offline FL rows, NaN/∞/−0.0 injected) returns the
    /// same verdict vector and whitelist counters on every backend, worker
    /// count, and shard grouping.
    fn classify_batch_matches_scalar_everywhere(rng) {
        let cfg = random_cfg(rng);
        let fl = random_rules(rng, SWITCH_FL_DIM);
        let pl = random_rules(rng, 4);
        let n = rng.gen_range(0usize..2200);
        let mut data = Dataset::zeros(n, SWITCH_FL_DIM);
        for i in 0..n {
            for v in data.row_mut(i) {
                *v = if rng.gen_bool(0.1) {
                    [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 0.0]
                        [rng.gen_range(0..5usize)]
                } else {
                    rng.gen_range(-100.0f32..2000.0)
                };
            }
        }

        let mut want = Vec::new();
        let mut scalar = ScalarPipeline::new(cfg, fl.clone(), pl.clone());
        scalar.classify_batch(&data, &mut want);
        let want_wl = scalar.whitelist_counters();

        let mut got = Vec::new();
        let mut soa = Pipeline::new(cfg, fl.clone(), pl.clone());
        soa.classify_batch(&data, &mut got);
        assert_eq!(got, want, "SoA verdicts != scalar at n={n}");
        assert_eq!(soa.whitelist_counters(), want_wl);

        for (shards, workers) in [(1usize, 1usize), (1, 8), (8, 1), (8, 8)] {
            let (got, wl) = with_workers(workers, || {
                let scfg = ShardedPipelineConfig::default()
                    .with_pipeline(cfg)
                    .with_shards(shards);
                let mut dp = ShardedPipeline::new(scfg, fl.clone(), pl.clone());
                let mut v = Vec::new();
                dp.classify_batch(&data, &mut v);
                (v, dp.whitelist_counters())
            });
            assert_eq!(got, want, "sharded({shards})/workers({workers}) verdicts differ");
            assert_eq!(wl, want_wl, "sharded({shards})/workers({workers}) counters differ");
        }
    }

    /// Drop-malicious off means nothing is ever dropped on either path,
    /// and outcome parity still holds.
    fn forward_only_mode_parity(rng, cases = 8) {
        let cfg = random_cfg(rng).with_drop_malicious(false);
        let fl = random_rules(rng, SWITCH_FL_DIM);
        let pl = random_rules(rng, 4);
        let pool = random_pool(rng, 8);
        let n = rng.gen_range(50usize..300);
        let batches = vec![random_packets(rng, &pool, n)];

        let mut scalar = ScalarPipeline::new(cfg, fl.clone(), pl.clone());
        let want = drive(&mut scalar, &batches, &[]);
        let mut soa = Pipeline::new(cfg, fl, pl);
        let got = drive(&mut soa, &batches, &[]);
        assert_eq!(got, want);
        assert!(
            got.0.iter().all(|o| o.verdict == PacketVerdict::Forward),
            "nothing may drop with drop_malicious=false and no blacklist"
        );
    }
}
