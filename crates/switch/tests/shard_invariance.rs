//! Shard-invariance suite: the `ShardedPipeline` backend must produce
//! **byte-identical** replay output — confusion matrix, digest stream,
//! blacklist contents, path counters — at 1, 2 and 8 physical shards,
//! at 1 and 8 workers, and with telemetry on or off. It must also match
//! the serial `Pipeline` packet-for-packet when the flow table is large
//! enough that neither backend sees slot collisions (cross-flow coupling
//! exists only through shared slots).

use iguard_core::rules::{Hypercube, RuleSet};
use iguard_flow::five_tuple::FiveTuple;
use iguard_flow::table::FlowTableConfig;
use iguard_runtime::par::with_workers;
use iguard_runtime::rng::Rng;
use iguard_switch::controller::{Controller, ControllerConfig};
use iguard_switch::data_plane::DataPlane;
use iguard_switch::pipeline::{Digest, Pipeline, PipelineConfig, ProcessOutcome};
use iguard_switch::replay::{replay, ReplayConfig};
use iguard_switch::sharded::{ShardedPipeline, ShardedPipelineConfig};
use iguard_synth::attacks::Attack;
use iguard_synth::benign::benign_trace;
use iguard_synth::trace::Trace;

fn accept_all(dim: usize) -> RuleSet {
    RuleSet {
        bounds: vec![(0.0, 1.0); dim],
        whitelist: vec![Hypercube {
            lo: vec![f32::NEG_INFINITY; dim],
            hi: vec![f32::INFINITY; dim],
        }],
        total_regions: 1,
    }
}

/// FL whitelist benign iff the std of inter-packet delay (feature 10) is
/// above a floor — separates machine-regular flood tooling from benign
/// jitter, so the trace exercises both digest labels.
fn fl_ipd_jitter_above(floor: f32) -> RuleSet {
    let mut lo = vec![f32::NEG_INFINITY; 13];
    let hi = vec![f32::INFINITY; 13];
    lo[10] = floor;
    RuleSet {
        bounds: vec![(0.0, 2000.0); 13],
        whitelist: vec![Hypercube { lo, hi }],
        total_regions: 2,
    }
}

/// A mixed benign + flood + scan trace of at least 10k packets.
fn mixed_trace() -> Trace {
    let mut rng = Rng::seed_from_u64(42);
    let benign = benign_trace(300, 8.0, &mut rng);
    let flood = Attack::UdpDdos.trace(60, 8.0, &mut rng);
    let scan = Attack::OsScan.trace(40, 8.0, &mut rng);
    let trace = Trace::merge(vec![benign, flood, scan]);
    assert!(trace.packets.len() >= 10_000, "trace too small: {}", trace.packets.len());
    trace
}

fn flow_cfg(slots: usize) -> PipelineConfig {
    PipelineConfig::default().with_flow_table(
        FlowTableConfig::default().with_slots_per_table(slots).with_pkt_threshold(4),
    )
}

/// Everything replay makes observable, for exact equality comparison.
#[derive(Debug, PartialEq)]
struct ReplayFingerprint {
    tp: u64,
    fp: u64,
    tn: u64,
    fn_: u64,
    dropped: u64,
    digests: u64,
    loopback: u64,
    counters: iguard_switch::pipeline::PathCounters,
    stats: iguard_flow::table::FlowTableStats,
    blacklist: Vec<FiveTuple>,
    controller_installed: usize,
}

fn replay_sharded(trace: &Trace, shards: usize, workers: usize, batch: usize) -> ReplayFingerprint {
    with_workers(workers, || {
        let cfg = ShardedPipelineConfig::from(flow_cfg(4096)).with_shards(shards);
        let mut dp = ShardedPipeline::new(cfg, fl_ipd_jitter_above(0.0008), accept_all(4));
        let mut controller = Controller::new(ControllerConfig::default());
        let r = replay(
            trace,
            &mut dp,
            &mut controller,
            &ReplayConfig::default().with_batch_size(batch),
        );
        ReplayFingerprint {
            tp: r.tp,
            fp: r.fp,
            tn: r.tn,
            fn_: r.fn_,
            dropped: r.dropped,
            digests: r.digests,
            loopback: r.loopback,
            counters: dp.counters(),
            stats: dp.flow_table_stats(),
            blacklist: dp.blacklist_contents(),
            controller_installed: controller.installed_len(),
        }
    })
}

#[test]
fn replay_identical_across_shards_and_workers() {
    let trace = mixed_trace();
    let base = replay_sharded(&trace, 1, 1, 256);
    assert!(base.tp > 0 && base.tn > 0, "trace must exercise both classes");
    assert!(!base.blacklist.is_empty(), "floods must be blacklisted");
    for (shards, workers) in [(2, 1), (8, 1), (1, 8), (2, 8), (8, 8)] {
        let got = replay_sharded(&trace, shards, workers, 256);
        assert_eq!(got, base, "replay diverged at {shards} shards / {workers} workers");
    }
}

#[test]
fn replay_identical_across_batch_sizes() {
    // Batch size changes controller feedback *granularity*, which may
    // legitimately change results vs batch=1; but for a fixed batch size
    // the shard count still must not matter — and feedback at batch=64
    // must equal feedback at batch=64 regardless of sharding.
    let trace = mixed_trace();
    for batch in [1usize, 64] {
        let base = replay_sharded(&trace, 1, 1, batch);
        for shards in [2usize, 8] {
            assert_eq!(
                replay_sharded(&trace, shards, 4, batch),
                base,
                "batch {batch} diverged at {shards} shards"
            );
        }
    }
}

/// Drives batches straight into the data plane (no controller feedback)
/// and returns the full drained digest stream, byte-for-byte.
fn digest_stream<D: DataPlane + ?Sized>(trace: &Trace, dp: &mut D, batch: usize) -> Vec<Digest> {
    let mut out = Vec::new();
    let mut outcomes: Vec<ProcessOutcome> = Vec::new();
    for chunk in trace.packets.chunks(batch) {
        dp.process_batch(chunk, &mut outcomes);
        dp.drain_digests_into(&mut out);
    }
    out
}

#[test]
fn digest_stream_byte_identical_across_shards() {
    let trace = mixed_trace();
    let mk = |shards: usize| {
        ShardedPipeline::new(
            ShardedPipelineConfig::from(flow_cfg(4096)).with_shards(shards),
            fl_ipd_jitter_above(0.0008),
            accept_all(4),
        )
    };
    // Odd batch size so batch boundaries don't align with anything.
    let base = with_workers(1, || digest_stream(&trace, &mut mk(1), 337));
    assert!(!base.is_empty());
    for (shards, workers) in [(2, 1), (8, 1), (8, 8), (16, 3)] {
        let got = with_workers(workers, || digest_stream(&trace, &mut mk(shards), 337));
        assert_eq!(got, base, "digest stream diverged at {shards} shards / {workers} workers");
    }
}

#[test]
fn sharded_matches_serial_pipeline_without_slot_pressure() {
    // 64k slots per table → 4k per logical shard; a few hundred flows
    // cannot collide in either layout, so the backends must agree on
    // every packet, digest and blacklist entry — including when driven
    // through `&mut dyn DataPlane` (trait-object parity).
    let trace = mixed_trace();
    let fl = fl_ipd_jitter_above(0.0008);
    let mut serial = Pipeline::new(flow_cfg(65_536), fl.clone(), accept_all(4));
    let mut sharded = ShardedPipeline::new(
        ShardedPipelineConfig::from(flow_cfg(65_536)).with_shards(8),
        fl,
        accept_all(4),
    );
    let backends: [&mut dyn DataPlane; 2] = [&mut serial, &mut sharded];
    let cfg = ReplayConfig::default().with_batch_size(1);
    let mut results = Vec::new();
    for dp in backends {
        let mut controller = Controller::new(ControllerConfig::default());
        let r = replay(&trace, dp, &mut controller, &cfg);
        results.push((
            (r.tp, r.fp, r.tn, r.fn_),
            r.digests,
            r.dropped,
            r.loopback,
            dp.counters(),
            dp.blacklist_len(),
            dp.packets_processed(),
        ));
    }
    assert_eq!(results[0], results[1], "serial and sharded backends disagree");
    assert_eq!(serial.blacklist_contents(), sharded.blacklist_contents());
    // Same digest *stream*, not just count: re-run without feedback.
    let mut serial2 = Pipeline::new(flow_cfg(65_536), fl_ipd_jitter_above(0.0008), accept_all(4));
    let mut sharded2 = ShardedPipeline::new(
        ShardedPipelineConfig::from(flow_cfg(65_536)).with_shards(8),
        fl_ipd_jitter_above(0.0008),
        accept_all(4),
    );
    let a = digest_stream(&trace, &mut serial2, 337);
    let b = digest_stream(&trace, &mut sharded2, 337);
    assert_eq!(a, b, "digest streams differ between serial and sharded");
}

#[test]
fn telemetry_toggle_does_not_change_results() {
    let trace = mixed_trace();
    iguard_telemetry::set_enabled(true);
    let on = replay_sharded(&trace, 8, 4, 128);
    iguard_telemetry::set_enabled(false);
    let off = replay_sharded(&trace, 8, 4, 128);
    iguard_telemetry::set_enabled(false);
    assert_eq!(on, off, "telemetry must be observe-only");
}
